package core

import (
	"math"
	"math/rand"
	"testing"

	"delaystage/internal/cluster"
	"delaystage/internal/dag"
	"delaystage/internal/sim"
	"delaystage/internal/workload"
)

func c30() *cluster.Cluster { return cluster.NewM4LargeCluster(30) }

func computeOK(t *testing.T, opt Options, j *workload.Job) *Schedule {
	t.Helper()
	s, err := Compute(opt, j)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	return s
}

// simJCT runs the job under the given delays and returns the JCT.
func simJCT(t *testing.T, c *cluster.Cluster, j *workload.Job, delays map[dag.StageID]float64) float64 {
	t.Helper()
	res, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1}, []sim.JobRun{{Job: j, Delays: delays}})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	return res.JCT(0)
}

func TestComputeValidation(t *testing.T) {
	j := workload.LDA(c30(), 1)
	if _, err := Compute(Options{}, j); err == nil {
		t.Error("nil cluster must error")
	}
	if _, err := Compute(Options{Cluster: c30()}, nil); err == nil {
		t.Error("nil job must error")
	}
	if _, err := Compute(Options{Cluster: c30(), Order: Order(99)}, j); err == nil {
		t.Error("bad order must error")
	}
}

func TestSequentialChainNoDelays(t *testing.T) {
	// A pure chain has no parallel stages: X must be empty.
	g := dag.New()
	g.MustAdd(dag.Stage{ID: 1})
	g.MustAdd(dag.Stage{ID: 2, Parents: []dag.StageID{1}})
	c := c30()
	p := workload.FromPhases(c, workload.PhaseSpec{ReadSec: 10, ComputeSec: 10, WriteSec: 1})
	j := &workload.Job{Name: "chain", Graph: g, Profiles: map[dag.StageID]workload.StageProfile{1: p, 2: p}}
	s := computeOK(t, Options{Cluster: c}, j)
	if len(s.Delays) != 0 || len(s.K) != 0 {
		t.Fatalf("chain job: delays %v, K %v", s.Delays, s.K)
	}
}

func TestDelaysNonNegative(t *testing.T) {
	c := c30()
	for name, j := range workload.PaperWorkloads(c, 0.2) {
		s := computeOK(t, Options{Cluster: c}, j)
		for id, d := range s.Delays {
			if d < 0 {
				t.Errorf("%s stage %d delay %v < 0", name, id, d)
			}
		}
	}
}

// The core guarantee: the schedule's predicted makespan never exceeds the
// stock makespan (x=0 is always a candidate).
func TestNeverWorseThanStockPredicted(t *testing.T) {
	c := c30()
	for name, j := range workload.PaperWorkloads(c, 0.2) {
		s := computeOK(t, Options{Cluster: c}, j)
		if s.Makespan > s.StockMakespan+1e-6 {
			t.Errorf("%s: makespan %v > stock %v", name, s.Makespan, s.StockMakespan)
		}
	}
}

// End-to-end: the computed delays must actually shorten the simulated JCT
// of the paper workloads — the paper's headline result (Fig. 10).
func TestDelaysImproveSimulatedJCT(t *testing.T) {
	c := c30()
	for name, j := range workload.PaperWorkloads(c, 0.2) {
		s := computeOK(t, Options{Cluster: c}, j)
		stock := simJCT(t, c, j, nil)
		delayed := simJCT(t, c, j, s.Delays)
		if delayed > stock*1.005 {
			t.Errorf("%s: delayed JCT %.1f worse than stock %.1f (X=%v)", name, delayed, stock, s.Delays)
		}
		t.Logf("%s: stock %.1f → delayed %.1f (%.1f%%), X=%v",
			name, stock, delayed, 100*(stock-delayed)/stock, s.Delays)
	}
}

func TestALSImproves(t *testing.T) {
	c := cluster.NewM4LargeCluster(3)
	j := workload.ALS(c, 1)
	s := computeOK(t, Options{Cluster: c}, j)
	stock := simJCT(t, c, j, nil)
	delayed := simJCT(t, c, j, s.Delays)
	if delayed >= stock {
		t.Fatalf("ALS: delayed %.1f !< stock %.1f", delayed, stock)
	}
	if len(s.Delays) == 0 {
		t.Fatal("ALS should delay at least one stage")
	}
}

func TestOrdersProduceSchedules(t *testing.T) {
	c := c30()
	j := workload.TriangleCount(c, 0.2)
	for _, o := range []Order{Descending, Ascending, Random} {
		s := computeOK(t, Options{Cluster: c, Order: o, Seed: 1}, j)
		if s.Makespan > s.StockMakespan+1e-6 {
			t.Errorf("order %v: makespan regressed", o)
		}
	}
}

func TestOrderString(t *testing.T) {
	if Descending.String() != "descending" || Ascending.String() != "ascending" || Random.String() != "random" {
		t.Fatal("order names wrong")
	}
	if Order(42).String() == "" {
		t.Fatal("unknown order must still format")
	}
}

func TestModelEvaluatorAgreesDirectionally(t *testing.T) {
	c := c30()
	j := workload.CosineSimilarity(c, 0.2)
	simSched := computeOK(t, Options{Cluster: c}, j)
	modelSched := computeOK(t, Options{Cluster: c, UseModelEvaluator: true}, j)
	stock := simJCT(t, c, j, nil)
	simJCTv := simJCT(t, c, j, simSched.Delays)
	modelJCTv := simJCT(t, c, j, modelSched.Delays)
	// Both evaluators must not hurt, and the sim evaluator must be at
	// least as good as the model one (it sees the true dynamics).
	if simJCTv > stock*1.005 || modelJCTv > stock*1.01 {
		t.Fatalf("stock %.1f, sim-eval %.1f, model-eval %.1f", stock, simJCTv, modelJCTv)
	}
}

func TestRandomOrderDeterministicPerSeed(t *testing.T) {
	c := c30()
	j := workload.TriangleCount(c, 0.2)
	a := computeOK(t, Options{Cluster: c, Order: Random, Seed: 7}, j)
	b := computeOK(t, Options{Cluster: c, Order: Random, Seed: 7}, j)
	if len(a.Delays) != len(b.Delays) {
		t.Fatal("same seed, different schedules")
	}
	for id, d := range a.Delays {
		if b.Delays[id] != d {
			t.Fatalf("same seed, stage %d delay %v vs %v", id, d, b.Delays[id])
		}
	}
}

func TestCandidates(t *testing.T) {
	cs := candidates(10, 1, 64)
	if len(cs) != 11 || cs[0] != 0 || cs[10] != 10 {
		t.Fatalf("candidates(10,1) = %v", cs)
	}
	cs = candidates(0, 1, 64)
	if len(cs) != 1 || cs[0] != 0 {
		t.Fatalf("candidates(0,1) = %v", cs)
	}
	cs = candidates(1000, 1, 5)
	if len(cs) != 5 || cs[4] != 1000 {
		t.Fatalf("adaptive candidates = %v", cs)
	}
	// Edge contract (see the function comment): each case must yield the
	// defined single-candidate slice, not a loop accident.
	for _, tc := range []struct {
		name        string
		upper, slot float64
		maxN        int
	}{
		{"upper<slot", 0.5, 1, 64},
		{"slot==0", 10, 0, 64}, // normalized to 1 s slots → 11 candidates
		{"maxN==1", 10, 1, 1},
		{"negative upper", -3, 1, 64},
		{"NaN upper", math.NaN(), 1, 64},
		{"NaN slot", 10, math.NaN(), 64},
		{"maxN==0", 10, 1, 0},
	} {
		cs := candidates(tc.upper, tc.slot, tc.maxN)
		switch tc.name {
		case "slot==0", "NaN slot":
			if len(cs) != 11 || cs[0] != 0 || cs[10] != 10 {
				t.Fatalf("%s: candidates(%v,%v,%d) = %v, want 0..10",
					tc.name, tc.upper, tc.slot, tc.maxN, cs)
			}
		default:
			if len(cs) != 1 || cs[0] != 0 {
				t.Fatalf("%s: candidates(%v,%v,%d) = %v, want [0]",
					tc.name, tc.upper, tc.slot, tc.maxN, cs)
			}
		}
	}
}

func TestEvaluationsCounted(t *testing.T) {
	c := c30()
	j := workload.LDA(c, 0.2)
	s := computeOK(t, Options{Cluster: c, MaxCandidates: 8}, j)
	if s.Evaluations < len(s.K) {
		t.Fatalf("evaluations %d < |K| %d", s.Evaluations, len(s.K))
	}
	if s.ComputeTime <= 0 {
		t.Fatal("compute time not recorded")
	}
}

func TestPathsCoverAllOfK(t *testing.T) {
	c := c30()
	j := workload.TriangleCount(c, 0.2)
	s := computeOK(t, Options{Cluster: c}, j)
	covered := map[dag.StageID]bool{}
	for _, p := range s.Paths {
		for _, id := range p.Stages {
			covered[id] = true
		}
	}
	for _, id := range s.K {
		if !covered[id] {
			t.Errorf("stage %d in K but on no path", id)
		}
	}
}

func TestSortedIDs(t *testing.T) {
	m := map[dag.StageID]float64{3: 1, 1: 1, 2: 1}
	ids := sortedIDs(m)
	if len(ids) != 3 || ids[0] != 1 || ids[2] != 3 {
		t.Fatalf("sortedIDs = %v", ids)
	}
}

// randFrom builds a deterministic rng for the random-job tests.
func randFrom(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// The gallery workloads (iterative PageRank, bushy SQL join, ETL
// pipeline) must also benefit from delay scheduling — DAG shapes beyond
// the paper's four.
func TestGalleryWorkloadsImprove(t *testing.T) {
	c := c30()
	for name, j := range workload.Gallery(c, 0.2) {
		s := computeOK(t, Options{Cluster: c}, j)
		stock := simJCT(t, c, j, nil)
		delayed := simJCT(t, c, j, s.Delays)
		if delayed > stock*1.005 {
			t.Errorf("%s: delayed %.1f worse than stock %.1f", name, delayed, stock)
		}
		t.Logf("%s: stock %.1f → %.1f (−%.1f%%)", name, stock, delayed, 100*(stock-delayed)/stock)
	}
}
