package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"delaystage/internal/cluster"
	"delaystage/internal/faults"
	"delaystage/internal/scheduler"
	"delaystage/internal/sim"
	"delaystage/internal/workload"
)

// Property: with the never-worse guard attached, Alg. 1 cannot lose much
// to stock Spark even when it planned from wrong numbers. Each trial draws
// a random DAG, perturbs its profiles by ±30% — the paper's
// profiling-error regime — plans on the perturbed copy, then runs the TRUE
// job. Open-loop DelayStage loses by 10–30% on a fair share of such draws
// (delays computed for a job that does not exist); the guard watches
// observed read/completion times against the plan's predictions and
// cancels the remaining delays on drift.
//
// ε is the guard's irreducible exposure: delays spent before the first
// observable signal (a read end or stage completion) cannot be revoked,
// and on these small DAGs that window is worth up to ~10% of the JCT
// (tightening DriftTolerance does not shrink it — measured identical
// worst case at 0.15, 0.08, 0.04 and 0.02). The property that holds, and
// that open-loop DelayStage demonstrably lacks, is the capped tail.
func TestNeverWorseGuardUnderProfileNoise(t *testing.T) {
	const (
		trials = 30
		noise  = 0.30
		eps    = 0.12
	)
	c := cluster.NewM4LargeCluster(8)
	rng := rand.New(rand.NewSource(42))
	inj, err := faults.NewInjector(faults.FaultPlan{Seed: 42, MispredictNoise: noise})
	if err != nil {
		t.Fatal(err)
	}
	worse, openLoopWorse := 0, 0
	for i := 0; i < trials; i++ {
		nStages := 4 + rng.Intn(9)
		job := workload.RandomJob(fmt.Sprintf("rand-%d", i), c, nStages, rng)
		believed := inj.PerturbJob(rng, job)

		g := scheduler.GuardedDelayStage{}
		plan, err := g.DelayStage.Plan(c, believed)
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		spark, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1},
			[]sim.JobRun{{Job: job}})
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		open, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1},
			[]sim.JobRun{{Job: job, Delays: plan.Delays}})
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		if open.JCT(0) > spark.JCT(0)*(1+eps) {
			openLoopWorse++
		}
		wd, err := g.WatchdogFor(c, believed, plan)
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		guarded, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1, Watchdog: wd},
			[]sim.JobRun{{Job: job, Delays: plan.Delays}})
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		if guarded.JCT(0) > spark.JCT(0)*(1+eps) {
			worse++
			t.Errorf("trial %d (%d stages): guarded %.2f > spark %.2f × %.2f (open loop %.2f, delays %v)",
				i, nStages, guarded.JCT(0), spark.JCT(0), 1+eps, open.JCT(0), plan.Delays)
		}
	}
	if worse > 0 {
		t.Fatalf("never-worse violated in %d/%d trials", worse, trials)
	}
	// The property is only evidence if the guard had something to save:
	// open-loop DelayStage must bust the same ε bound somewhere on these
	// draws (it loses up to ~28%).
	if openLoopWorse == 0 {
		t.Fatal("open-loop DelayStage never lost; the property is vacuous on these draws")
	}
}
