package core

import (
	"testing"

	"delaystage/internal/cluster"
	"delaystage/internal/dag"
	"delaystage/internal/workload"
)

// Three identical root stages with read == compute and no write admit a
// perfect pipeline: stagger by one read time each, turning 6R serialized
// phases into 4R. Alg. 1 must recover most of that 33% gain.
func TestStaggerThreeIdenticalStages(t *testing.T) {
	c := cluster.NewM4LargeCluster(10)
	g := dag.New()
	g.MustAdd(dag.Stage{ID: 1})
	g.MustAdd(dag.Stage{ID: 2})
	g.MustAdd(dag.Stage{ID: 3})
	p := workload.FromPhases(c, workload.PhaseSpec{ReadSec: 100, ComputeSec: 100, WriteSec: 0})
	j := &workload.Job{Name: "tri-root", Graph: g, Profiles: map[dag.StageID]workload.StageProfile{1: p, 2: p, 3: p}}
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	s := computeOK(t, Options{Cluster: c}, j)
	stock := simJCT(t, c, j, nil)
	delayed := simJCT(t, c, j, s.Delays)
	gain := (stock - delayed) / stock
	t.Logf("stock %.1f delayed %.1f gain %.1f%% X=%v", stock, delayed, gain*100, s.Delays)
	if stock < 590 {
		t.Fatalf("stock should serialize to ~600, got %.1f", stock)
	}
	if gain < 0.25 {
		t.Fatalf("expected ≥25%% gain from staggering, got %.1f%% (X=%v)", gain*100, s.Delays)
	}
}
