package core

import (
	"math"
	"testing"

	"delaystage/internal/cluster"
	"delaystage/internal/dag"
	"delaystage/internal/perfmodel"
	"delaystage/internal/sim"
	"delaystage/internal/workload"
)

func TestRestrictJob(t *testing.T) {
	c := c30()
	j := workload.LDA(c, 0.2)
	active := map[dag.StageID]bool{2: true, 3: true}
	sub, err := restrictJob(j, active)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Graph.Len() != 2 {
		t.Fatalf("restricted graph has %d stages, want 2", sub.Graph.Len())
	}
	if sub.Graph.Stage(1) != nil {
		t.Fatal("stage 1 must be excluded")
	}
	// Stage 3's parent 2 is active and must be kept.
	if got := sub.Graph.Parents(3); len(got) != 1 || got[0] != 2 {
		t.Fatalf("stage 3 parents = %v, want [2]", got)
	}
	// nil active = identity.
	same, err := restrictJob(j, nil)
	if err != nil || same != j {
		t.Fatal("nil active must return the job unchanged")
	}
}

func TestRestrictJobDropsCrossEdges(t *testing.T) {
	c := c30()
	j := workload.CosineSimilarity(c, 0.2) // S5 ← {S2, S4}
	active := map[dag.StageID]bool{2: true, 5: true}
	sub, err := restrictJob(j, active)
	if err != nil {
		t.Fatal(err)
	}
	if got := sub.Graph.Parents(5); len(got) != 1 || got[0] != 2 {
		t.Fatalf("stage 5 parents = %v, want [2] (4 inactive)", got)
	}
}

func TestSimEvaluatorMatchesDirectSim(t *testing.T) {
	c := c30()
	j := workload.LDA(c, 0.2)
	reach, _ := dag.NewReachability(j.Graph)
	k := dag.ParallelStages(j.Graph, reach)
	ev := newSimEvaluator(c, j, k, false)
	got, err := ev.Makespan(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Direct coarse sim of the full job: job end must coincide.
	res, err := sim.Run(sim.Options{Cluster: sim.Coarsen(c), TrackNode: -1}, []sim.JobRun{{Job: j}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-res.JCT(0)) > 1e-6 {
		t.Fatalf("evaluator %.3f != sim %.3f", got, res.JCT(0))
	}
}

func TestModelEvaluatorMonotoneInDelay(t *testing.T) {
	// Delaying the only stage of a single-stage job by d moves its end by
	// exactly d under the model.
	c := c30()
	g := dag.New()
	g.MustAdd(dag.Stage{ID: 1})
	g.MustAdd(dag.Stage{ID: 2})
	p := workload.FromPhases(c, workload.PhaseSpec{ReadSec: 10, ComputeSec: 10, WriteSec: 1})
	j := &workload.Job{Name: "m", Graph: g, Profiles: map[dag.StageID]workload.StageProfile{1: p, 2: p}}
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	m, _ := perfmodel.New(c)
	reach, _ := dag.NewReachability(j.Graph)
	k := dag.ParallelStages(j.Graph, reach)
	ev := newModelEvaluator(m, j, reach, k, m.SoloTimes(j))
	base, _ := ev.Makespan(nil)
	big, _ := ev.Makespan(map[dag.StageID]float64{1: 1000})
	if big < base+900 {
		t.Fatalf("huge delay must dominate: base %.1f, delayed %.1f", base, big)
	}
}

func TestPredictTimelinesCoversAllStages(t *testing.T) {
	c := c30()
	j := workload.TriangleCount(c, 0.2)
	m, _ := perfmodel.New(c)
	pred, err := PredictTimelines(m, j)
	if err != nil {
		t.Fatal(err)
	}
	if len(pred) != j.Graph.Len() {
		t.Fatalf("%d predictions for %d stages", len(pred), j.Graph.Len())
	}
	solo := m.SoloTimes(j)
	for id, v := range pred {
		if v < solo[id]-1e-6 {
			t.Errorf("stage %d predicted %.1f below its solo time %.1f", id, v, solo[id])
		}
	}
}

// The never-worse guard: whatever the search does, the returned schedule
// never predicts worse than stock, and the simulated JCT with the sim
// evaluator (which matches the measurement cluster when coarse == fine)
// never regresses.
func TestNeverWorseGuardOnRandomJobs(t *testing.T) {
	c := sim.Coarsen(cluster.NewM4LargeCluster(4))
	for seed := int64(0); seed < 12; seed++ {
		job := workload.RandomJob("nw", c, 9, randFrom(seed))
		s, err := Compute(Options{Cluster: c, MaxCandidates: 8}, job)
		if err != nil {
			t.Fatal(err)
		}
		if s.Makespan > s.StockMakespan+1e-6 {
			t.Fatalf("seed %d: makespan %.1f > stock %.1f", seed, s.Makespan, s.StockMakespan)
		}
		stock, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1}, []sim.JobRun{{Job: job}})
		if err != nil {
			t.Fatal(err)
		}
		delayed, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1}, []sim.JobRun{{Job: job, Delays: s.Delays}})
		if err != nil {
			t.Fatal(err)
		}
		if delayed.JCT(0) > stock.JCT(0)*1.001 {
			t.Fatalf("seed %d: delays regressed the real JCT %.1f > %.1f", seed, delayed.JCT(0), stock.JCT(0))
		}
	}
}
