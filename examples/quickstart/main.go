// Quickstart: build a DAG job, compute its DelayStage schedule, and
// simulate it against stock Spark scheduling.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"delaystage/internal/cluster"
	"delaystage/internal/core"
	"delaystage/internal/dag"
	"delaystage/internal/sim"
	"delaystage/internal/workload"
)

func main() {
	// A 10-node cluster of EC2 m4.large-class machines.
	c := cluster.NewM4LargeCluster(10)

	// A small DAG job: two parallel chains joined by a final stage.
	//
	//	1 → 2 ↘
	//	        5
	//	3 → 4 ↗
	g := dag.New()
	g.MustAdd(dag.Stage{ID: 1, Name: "loadA"})
	g.MustAdd(dag.Stage{ID: 2, Name: "mapA", Parents: []dag.StageID{1}})
	g.MustAdd(dag.Stage{ID: 3, Name: "loadB"})
	g.MustAdd(dag.Stage{ID: 4, Name: "mapB", Parents: []dag.StageID{3}})
	g.MustAdd(dag.Stage{ID: 5, Name: "join", Parents: []dag.StageID{2, 4}})

	// Per-stage resource profiles, specified as uncontended phase times on
	// the cluster: shuffle-read seconds, compute seconds, shuffle-write
	// seconds.
	spec := func(read, compute, write float64) workload.StageProfile {
		return workload.FromPhases(c, workload.PhaseSpec{
			ReadSec: read, ComputeSec: compute, WriteSec: write, Skew: 0.3,
		})
	}
	job := &workload.Job{
		Name:  "quickstart",
		Graph: g,
		Profiles: map[dag.StageID]workload.StageProfile{
			1: spec(60, 50, 5),
			2: spec(40, 60, 5),
			3: spec(70, 60, 5),
			4: spec(50, 70, 5),
			5: spec(30, 40, 5),
		},
	}
	if err := job.Validate(); err != nil {
		log.Fatal(err)
	}

	// Stock Spark: every stage is submitted the instant it is ready.
	stock, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1}, []sim.JobRun{{Job: job}})
	if err != nil {
		log.Fatal(err)
	}

	// DelayStage: Alg. 1 computes which stages to hold back and for how long.
	sched, err := core.Compute(core.Options{Cluster: c}, job)
	if err != nil {
		log.Fatal(err)
	}
	delayed, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1},
		[]sim.JobRun{{Job: job, Delays: sched.Delays}})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("parallel stages: %v, execution paths: %d\n", sched.K, len(sched.Paths))
	fmt.Printf("delays: %v (computed in %v)\n", sched.Delays, sched.ComputeTime)
	fmt.Printf("stock Spark JCT:  %6.1f s  (CPU util %.1f%%)\n", stock.JCT(0), stock.AvgCPUUtil*100)
	fmt.Printf("DelayStage JCT:   %6.1f s  (CPU util %.1f%%)\n", delayed.JCT(0), delayed.AvgCPUUtil*100)
	fmt.Printf("speedup: %.1f%%\n", 100*(stock.JCT(0)-delayed.JCT(0))/stock.JCT(0))
}
