// Multijob: replay a small synthetic Alibaba-style trace against a shared
// cluster under four schedulers — Fuxi (no stage interleaving) and the
// three DelayStage path-order variants — the Sec. 5.3 experiment in
// miniature.
//
//	go run ./examples/multijob [-jobs 120]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"delaystage/internal/cluster"
	"delaystage/internal/core"
	"delaystage/internal/metrics"
	"delaystage/internal/sim"
	"delaystage/internal/trace"
	"delaystage/internal/workload"
)

func main() {
	nJobs := flag.Int("jobs", 120, "number of jobs to replay")
	seed := flag.Int64("seed", 1, "trace seed")
	flag.Parse()

	// The Sec. 5.3 cluster, scaled down: heterogeneous NICs, 80 MB/s disks.
	rng := rand.New(rand.NewSource(*seed))
	machines := cluster.NewTraceCluster(32, 4, rng)
	coarse := sim.Coarsen(machines)

	tr := trace.Generate(trace.GenConfig{Jobs: *nJobs, Seed: *seed, Span: 3 * 3600})
	var jobs []*workload.Job
	var arrivals []float64
	for i := range tr.Jobs {
		wj, err := tr.Jobs[i].Workload(coarse, trace.DefaultSplit, nil)
		if err != nil {
			log.Fatal(err)
		}
		jobs = append(jobs, wj)
		arrivals = append(arrivals, tr.Jobs[i].Arrival)
	}
	fmt.Printf("replaying %d jobs over %.1f h\n\n", len(jobs), (arrivals[len(arrivals)-1])/3600)

	type variant struct {
		name  string
		order core.Order
		plain bool
	}
	for _, v := range []variant{
		{name: "Fuxi (no interleaving)", plain: true},
		{name: "DelayStage (default)", order: core.Descending},
		{name: "DelayStage (random)", order: core.Random},
		{name: "DelayStage (ascending)", order: core.Ascending},
	} {
		runs := make([]sim.JobRun, len(jobs))
		for i, wj := range jobs {
			run := sim.JobRun{Job: wj, Arrival: arrivals[i]}
			if !v.plain {
				sched, err := core.Compute(core.Options{
					Cluster: coarse, Order: v.order, Seed: int64(i),
					MaxCandidates: 8,
				}, wj)
				if err != nil {
					log.Fatal(err)
				}
				run.Delays = sched.Delays
			}
			runs[i] = run
		}
		res, err := sim.Run(sim.Options{Cluster: coarse, TrackNode: -1, FairByJob: true}, runs)
		if err != nil {
			log.Fatal(err)
		}
		jcts := make([]float64, len(jobs))
		for i := range jobs {
			jcts[i] = res.JCT(i)
		}
		cdf := metrics.NewCDF(jcts)
		fmt.Printf("%-24s mean %7.0fs  P50 %7.0fs  P90 %7.0fs  CPU %4.1f%%  net %4.1f%%\n",
			v.name, cdf.Mean(), cdf.Quantile(0.5), cdf.Quantile(0.9),
			res.AvgCPUUtil*100, res.AvgNetUtil*100)
	}
}
