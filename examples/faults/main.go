// Faults: what happens to a delay schedule when the cluster misbehaves.
// The LDA job is planned by Alg. 1 from profiles perturbed by ±30% noise,
// then run on a cluster where tasks fail, partitions straggle, and one
// node crashes mid-job. Three strategies face the identical fault set:
// stock Spark (plans nothing, pays only the faults), open-loop DelayStage
// (also pays for delays computed from stale numbers), and guarded
// DelayStage (a watchdog cancels the remaining delays the moment the plan
// stops tracking reality).
//
//	go run ./examples/faults [-fault-rate 0.1] [-crash-frac 0.6] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"delaystage/internal/cluster"
	"delaystage/internal/faults"
	"delaystage/internal/obs"
	"delaystage/internal/scheduler"
	"delaystage/internal/sim"
	"delaystage/internal/workload"
)

func main() {
	faultRate := flag.Float64("fault-rate", 0.1, "per-partition task failure probability")
	crashFrac := flag.Float64("crash-frac", 0.6, "crash node 1 at this fraction of the fault-free JCT (0 = no crash)")
	seed := flag.Int64("seed", 1, "seed for profile noise and fault draws")
	flag.Parse()

	c := cluster.NewM4LargeCluster(10)
	job := workload.PaperWorkloads(c, 0.3)["LDA"]

	// The planner sees noisy profiles — reality is `job`, the plan is built
	// from `believed`.
	noise, err := faults.NewInjector(faults.FaultPlan{Seed: *seed, MispredictNoise: 0.3})
	if err != nil {
		log.Fatal(err)
	}
	believed := noise.PerturbJob(rand.New(rand.NewSource(*seed)), job)
	plan, err := scheduler.DelayStage{}.Plan(c, believed)
	if err != nil {
		log.Fatal(err)
	}

	clean, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1}, []sim.JobRun{{Job: job}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LDA on 10 nodes, fault-free Spark JCT %.1fs; planned delays %v\n\n",
		clean.JCT(0), plan.Delays)

	fp := faults.FaultPlan{Seed: *seed, TaskFailureProb: *faultRate,
		StragglerFrac: 0.2, StragglerFactor: 2.5}
	if *crashFrac > 0 {
		fp.Crashes = []faults.NodeCrash{{Node: 1, At: *crashFrac * clean.JCT(0)}}
	}

	for _, s := range []struct {
		label   string
		delays  bool
		guarded bool
	}{
		{"Spark (no delays)", false, false},
		{"DelayStage (open loop)", true, false},
		{"GuardedDelayStage", true, true},
	} {
		// Hash-seeded draws: every strategy sees the identical fault set.
		inj, err := faults.NewInjector(fp)
		if err != nil {
			log.Fatal(err)
		}
		// An inline observer counts the fault-path events as they happen —
		// the same typed stream the JSONL/Chrome exporters consume.
		var retries, crashes, revisions int
		opt := sim.Options{Cluster: c, TrackNode: -1, Faults: inj, MaxAttempts: 8,
			Observer: obs.Func(func(ev sim.Event) {
				switch ev.Kind {
				case sim.EvTaskRetry:
					retries++
				case sim.EvNodeCrash:
					crashes++
				case sim.EvDelayRevised:
					revisions++
				}
			})}
		jr := sim.JobRun{Job: job}
		if s.delays {
			jr.Delays = plan.Delays
		}
		if s.guarded {
			wd, err := scheduler.GuardedDelayStage{}.WatchdogFor(c, believed, plan)
			if err != nil {
				log.Fatal(err)
			}
			opt.Watchdog = wd
		}
		res, err := sim.Run(opt, []sim.JobRun{jr})
		if err != nil {
			log.Fatal(err)
		}
		if ferr := res.Failed(0); ferr != nil {
			log.Fatalf("%s: %v", s.label, ferr)
		}
		fmt.Printf("%-24s JCT %7.1fs  (+%5.1f%% vs fault-free)  retries %d  crashes %d  delay revisions %d\n",
			s.label, res.JCT(0), 100*(res.JCT(0)-clean.JCT(0))/clean.JCT(0), retries, crashes, revisions)
	}
	fmt.Println("\nThe guard trips on the first retry or drift beyond 15% and cancels the")
	fmt.Println("remaining delays, so faults cost guarded DelayStage no more than Spark.")
}
