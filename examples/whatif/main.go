// Whatif: explore manual delay choices for a workload with the performance
// model and the simulator — the workflow an operator would use before
// trusting Alg. 1's schedule. It sweeps a single stage's delay, prints the
// response curve, then compares the best manual point with the Alg. 1
// schedule.
//
//	go run ./examples/whatif [-workload CosineSimilarity] [-stage 1]
package main

import (
	"flag"
	"fmt"
	"log"

	"delaystage/internal/cluster"
	"delaystage/internal/core"
	"delaystage/internal/dag"
	"delaystage/internal/metrics"
	"delaystage/internal/sim"
	"delaystage/internal/workload"
)

func main() {
	name := flag.String("workload", "CosineSimilarity", "paper workload to explore")
	stage := flag.Int("stage", 1, "stage whose delay to sweep")
	flag.Parse()

	c := cluster.NewM4LargeCluster(30)
	job := workload.PaperWorkloads(c, 1.0)[*name]
	if job == nil {
		log.Fatalf("unknown workload %q (try ConnectedComponents, CosineSimilarity, LDA, TriangleCount)", *name)
	}
	sid := dag.StageID(*stage)
	if job.Graph.Stage(sid) == nil {
		log.Fatalf("workload %s has no stage %d", *name, *stage)
	}

	stock, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1}, []sim.JobRun{{Job: job}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: stock JCT %.1f s\n\n", *name, stock.JCT(0))

	// Sweep the stage's delay and plot the JCT response.
	fmt.Printf("sweeping delay of stage %d:\n", sid)
	var curve []float64
	bestJCT, bestDelay := stock.JCT(0), 0.0
	for d := 0.0; d <= stock.JCT(0)/2; d += stock.JCT(0) / 40 {
		res, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1},
			[]sim.JobRun{{Job: job, Delays: map[dag.StageID]float64{sid: d}}})
		if err != nil {
			log.Fatal(err)
		}
		curve = append(curve, res.JCT(0))
		if res.JCT(0) < bestJCT {
			bestJCT, bestDelay = res.JCT(0), d
		}
	}
	fmt.Printf("JCT response %s\n", metrics.Sparkline(curve))
	fmt.Printf("best single-stage delay: %.0f s → JCT %.1f s (%.1f%%)\n\n",
		bestDelay, bestJCT, 100*(stock.JCT(0)-bestJCT)/stock.JCT(0))

	// Alg. 1 searches all parallel stages jointly.
	sched, err := core.Compute(core.Options{Cluster: c}, job)
	if err != nil {
		log.Fatal(err)
	}
	full, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1},
		[]sim.JobRun{{Job: job, Delays: sched.Delays}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Alg. 1 schedule %v → JCT %.1f s (%.1f%%), computed in %v\n",
		sched.Delays, full.JCT(0), 100*(stock.JCT(0)-full.JCT(0))/stock.JCT(0), sched.ComputeTime)
}
