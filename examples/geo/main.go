// Geo: the paper's Sec. 6 future-work direction, implemented — DelayStage
// on a geo-distributed job. Three datacenters with scarce WAN links run
// the TriangleCount DAG spread across them; stage delays interleave WAN
// transfers with remote computation.
//
//	go run ./examples/geo [-wan-mbps 400]
package main

import (
	"flag"
	"fmt"
	"log"

	"delaystage/internal/cluster"
	"delaystage/internal/geo"
	"delaystage/internal/workload"
)

func main() {
	wanMBps := flag.Float64("wan-mbps", 400, "WAN link bandwidth (MB/s); intra-DC is 10,000")
	flag.Parse()

	dc := cluster.Node{ID: 0, Executors: 32, NetBW: cluster.MBps(10000), DiskBW: cluster.MBps(2000)}
	topo := geo.UniformWAN(3, dc, cluster.MBps(*wanMBps))
	ref := &cluster.Cluster{Nodes: []cluster.Node{dc}}

	wl := workload.TriangleCount(ref, 0.3)
	placement, err := geo.SpreadPlacement(wl, 3)
	if err != nil {
		log.Fatal(err)
	}
	job := &geo.Job{Workload: wl, Placement: placement}
	fmt.Printf("TriangleCount across 3 DCs (WAN %v MB/s): %d bytes cross WAN\n",
		*wanMBps, geo.WANBytes(topo, job))

	stock, err := geo.Run(geo.Options{Topology: topo}, job, nil)
	if err != nil {
		log.Fatal(err)
	}
	sched, err := geo.ComputeDelays(geo.DelayOptions{Topology: topo}, job)
	if err != nil {
		log.Fatal(err)
	}
	delayed, err := geo.Run(geo.Options{Topology: topo}, job, sched.Delays)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("submit-when-ready JCT: %7.1f s  (WAN util %.1f%%)\n", stock.JCT, stock.AvgWANUtil*100)
	fmt.Printf("geo DelayStage JCT:    %7.1f s  (WAN util %.1f%%)  X=%v\n",
		delayed.JCT, delayed.AvgWANUtil*100, sched.Delays)
	fmt.Printf("speedup: %.1f%%  (Alg. 1 in %v over %d evaluations)\n",
		100*(stock.JCT-delayed.JCT)/stock.JCT, sched.ComputeTime, sched.Evaluations)
}
