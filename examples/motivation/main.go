// Motivation: reproduce the paper's Sec. 2 walk-through — run the ALS job
// on a three-node cluster under stock Spark, watch the CPU and network
// swing between full and idle (Fig. 5), then delay two parallel stages and
// watch the resources interleave (Fig. 6).
//
//	go run ./examples/motivation
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"delaystage/internal/dag"
	"delaystage/internal/experiments"
)

func main() {
	cfg := experiments.Config{W: os.Stdout}
	if _, err := experiments.Fig5(cfg); err != nil {
		log.Fatal(err)
	}
	r, err := experiments.Fig6(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Takeaway: delaying stages %v (total %.0f s of deliberate waiting) removed %.0f s of contention.\n",
		keys(r.Delays), total(r.Delays), r.StockJCT-r.DelayedJCT+total(r.Delays))
}

func keys(m map[dag.StageID]float64) []dag.StageID {
	var out []dag.StageID
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func total(m map[dag.StageID]float64) float64 {
	t := 0.0
	for _, v := range m {
		t += v
	}
	return t
}
