// Sparklog: the prototype's full profiling pipeline, end to end — run a
// job (the simulator stands in for a Spark cluster), collect its event
// log, parse the log back, extract the model parameters, compute a
// DelayStage schedule from them, and verify it against the true job.
//
//	go run ./examples/sparklog
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"delaystage/internal/cluster"
	"delaystage/internal/core"
	"delaystage/internal/eventlog"
	"delaystage/internal/sim"
	"delaystage/internal/workload"
)

func main() {
	c := cluster.NewM4LargeCluster(10)
	truth := workload.TriangleCount(c, 0.3)

	// 1. "Run on Spark" and collect the event log.
	baseline, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1}, []sim.JobRun{{Job: truth}})
	if err != nil {
		log.Fatal(err)
	}
	evlog := eventlog.Synthesize(truth, baseline, 16, rand.New(rand.NewSource(1)))
	var buf bytes.Buffer
	if err := eventlog.Write(&buf, evlog); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected event log: %d bytes, %d stages\n", buf.Len(), len(evlog.Stages))

	// 2. Parse the log and extract the DAG + model parameters.
	parsed, err := eventlog.Parse(&buf)
	if err != nil {
		log.Fatal(err)
	}
	derived, err := parsed.Job(c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("derived job %q: %d stages, e.g. stage 1 R_k = %.1f MB/s, skew %.2f\n",
		derived.Name, derived.Graph.Len(),
		derived.Profiles[1].ProcRate/cluster.MB, derived.Profiles[1].Skew)

	// 3. Plan on the log-derived parameters; verify on the true job.
	sched, err := core.Compute(core.Options{Cluster: c}, derived)
	if err != nil {
		log.Fatal(err)
	}
	delayed, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1},
		[]sim.JobRun{{Job: truth, Delays: sched.Delays}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stock JCT %.1fs → DelayStage (from log) %.1fs (−%.1f%%), X=%v\n",
		baseline.JCT(0), delayed.JCT(0),
		100*(baseline.JCT(0)-delayed.JCT(0))/baseline.JCT(0), sched.Delays)
}
