// Command simulate runs one workload under one scheduling strategy on the
// fluid cluster simulator and prints the stage timeline (Gantt), the
// tracked worker's utilization summary, and the JCT.
//
// Usage:
//
//	simulate [-workload TriangleCount] [-strategy delaystage|spark|aggshuffle|fuxi] [-nodes 30] [-scale 1.0] [-parallelism n]
//	simulate -spec job.json -strategy delaystage
//	simulate -fault-rate 0.1 -straggler-frac 0.25 -straggler-factor 3 -guarded
//	simulate -crash-node 1 -crash-at 120 -fault-seed 7 -max-retries 4
//	simulate -node-mttf 600 -mttf-horizon 200 -slow-node-frac 0.2 -slow-node-factor 3
//	simulate -crash-rack 1 -rack-size 4 -crash-rack-at 90 -speculate -blacklist-after 2
//	simulate -checkpoint-dir ckpt -checkpoint-every 30        # crash-safe run
//	simulate -checkpoint-dir ckpt -checkpoint-every 30 -resume # continue after a kill
//	simulate -events run.jsonl -chrometrace trace.json -json summary.json
//	simulate -report                      # append the attribution report
//	simulate -checkpoint 40               # snapshot/fork round-trip check
//	simulate -shards 1                    # run through the stepped shard runner
//	simulate -serve 127.0.0.1:9090 -linger 30s   # live /metrics, /healthz, pprof
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"reflect"
	"syscall"
	"time"

	"delaystage/internal/attr"
	"delaystage/internal/ckpt"
	"delaystage/internal/cluster"
	"delaystage/internal/core"
	"delaystage/internal/faults"
	"delaystage/internal/jobspec"
	"delaystage/internal/metrics"
	"delaystage/internal/obs"
	"delaystage/internal/scheduler"
	"delaystage/internal/shardsim"
	"delaystage/internal/sim"
	"delaystage/internal/workload"
)

func main() {
	name := flag.String("workload", "TriangleCount", "ALS | ConnectedComponents | CosineSimilarity | LDA | TriangleCount")
	stratName := flag.String("strategy", "delaystage", "spark | aggshuffle | fuxi | delaystage | delaystage-ascending | delaystage-random")
	nodes := flag.Int("nodes", 30, "cluster size")
	scale := flag.Float64("scale", 1.0, "workload duration scale")
	specPath := flag.String("spec", "", "JSON job spec (overrides -workload)")
	faultRate := flag.Float64("fault-rate", 0, "per-partition task failure probability")
	stragFrac := flag.Float64("straggler-frac", 0, "fraction of partitions that straggle")
	stragFactor := flag.Float64("straggler-factor", 1, "slowdown multiplier of straggling partitions")
	crashNode := flag.Int("crash-node", -1, "node to crash (-1 = none)")
	crashAt := flag.Float64("crash-at", 0, "crash time in simulated seconds")
	nodeMTTF := flag.Float64("node-mttf", 0, "mean time to failure per node in simulated seconds; every node draws a hash-based crash time (0 = off)")
	mttfHorizon := flag.Float64("mttf-horizon", 0, "only MTTF crash draws before this simulated time take effect (0 = unbounded)")
	slowNodeFrac := flag.Float64("slow-node-frac", 0, "fraction of nodes that run persistently slow")
	slowNodeFactor := flag.Float64("slow-node-factor", 1, "slowdown multiplier of persistently slow nodes")
	rackSize := flag.Int("rack-size", 0, "nodes per rack for -crash-rack (0 = no rack topology)")
	crashRack := flag.Int("crash-rack", -1, "rack whose machines all crash at -crash-rack-at (-1 = none; requires -rack-size)")
	crashRackAt := flag.Float64("crash-rack-at", 0, "rack crash time in simulated seconds")
	faultSeed := flag.Int64("fault-seed", 1, "seed of the fault injector's deterministic draws")
	maxRetries := flag.Int("max-retries", 0, "attempts per partition before the job fails (0 = default 4)")
	speculate := flag.Bool("speculate", false, "launch speculative clones of straggling partitions on other nodes")
	specThreshold := flag.Float64("spec-threshold", 0, "speculation slowness threshold vs the stage median (0 = default 1.5)")
	blacklistAfter := flag.Int("blacklist-after", 0, "take a node out of placement after this many faults on it (0 = off)")
	ckptDir := flag.String("checkpoint-dir", "", "write crash-safe run checkpoints into this directory (requires -checkpoint-every)")
	ckptEvery := flag.Float64("checkpoint-every", 0, "checkpoint cadence in simulated seconds")
	resume := flag.Bool("resume", false, "resume from the checkpoint in -checkpoint-dir if one exists (missing or stale checkpoints start fresh)")
	guarded := flag.Bool("guarded", false, "attach the runtime watchdog to a delaystage strategy (cancels stale delays)")
	parallelism := flag.Int("parallelism", 1, "goroutines for the delaystage candidate scan (plan is bit-identical at any setting)")
	approxPlan := flag.Bool("approx-plan", false, "plan delaystage variants from the analytic bound surrogate only (no simulation per candidate)")
	eventsPath := flag.String("events", "", "write a JSONL event log of the run to this file (\"-\" = stdout)")
	tracePath := flag.String("chrometrace", "", "write a Chrome trace-event file (chrome://tracing, Perfetto) to this file")
	jsonPath := flag.String("json", "", "write a machine-readable run summary to this file (\"-\" = stdout)")
	report := flag.Bool("report", false, "append the attribution report (time decomposition, contention matrix, critical path); cmd/analyze reproduces it byte-identically from a -events log")
	serveAddr := flag.String("serve", "", "serve live introspection (/metrics, /healthz, /debug/pprof) on this address while the run executes")
	linger := flag.Duration("linger", 0, "keep the -serve endpoint up this long after the run finishes (for scraping short runs)")
	checkpoint := flag.Float64("checkpoint", -1, "demonstrate checkpoint/fork: snapshot the run just before this simulated time, resume the copy, and verify it is bit-identical to the uninterrupted run (-1 = off)")
	shardsN := flag.Int("shards", 0, "drive the run through the merging-clock shard runner instead of sim.Run (0 = off); a single workload is one world, so any N clamps to 1 — the flag exercises the exact stepped-engine path the sharded replay uses, with bit-identical results")
	flag.Parse()

	// SIGINT/SIGTERM cancel the context: a checkpointed run stops at the
	// next checkpoint boundary with the file freshly flushed (resumable
	// with -resume), and a -linger endpoint wakes up early.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	c := cluster.NewM4LargeCluster(*nodes)
	var job *workload.Job
	switch {
	case *specPath != "":
		spec, err := jobspec.Load(*specPath)
		if err != nil {
			log.Fatal(err)
		}
		j, err := spec.Job(c)
		if err != nil {
			log.Fatal(err)
		}
		job = j
	case *name == "ALS":
		job = workload.ALS(c, *scale)
	default:
		job = workload.PaperWorkloads(c, *scale)[*name]
	}
	if job == nil {
		log.Fatalf("unknown workload %q", *name)
	}

	var strat scheduler.Strategy
	switch *stratName {
	case "spark":
		strat = scheduler.Spark{}
	case "aggshuffle":
		strat = scheduler.AggShuffle{}
	case "fuxi":
		strat = scheduler.Fuxi{}
	case "delaystage":
		strat = scheduler.DelayStage{Parallelism: *parallelism, Approximate: *approxPlan}
	case "delaystage-ascending":
		strat = scheduler.DelayStage{Order: core.Ascending, Parallelism: *parallelism, Approximate: *approxPlan}
	case "delaystage-random":
		strat = scheduler.DelayStage{Order: core.Random, Parallelism: *parallelism, Approximate: *approxPlan}
	default:
		log.Fatalf("unknown strategy %q", *stratName)
	}
	if *approxPlan {
		if _, ok := strat.(scheduler.DelayStage); !ok {
			log.Fatalf("-approx-plan requires a delaystage strategy, got %q", *stratName)
		}
	}
	if *guarded {
		ds, ok := strat.(scheduler.DelayStage)
		if !ok {
			log.Fatalf("-guarded requires a delaystage strategy, got %q", *stratName)
		}
		strat = scheduler.GuardedDelayStage{DelayStage: ds}
	}

	plan := faults.FaultPlan{
		Seed:            *faultSeed,
		TaskFailureProb: *faultRate,
		StragglerFrac:   *stragFrac,
		StragglerFactor: *stragFactor,
		NodeMTTF:        *nodeMTTF,
		MTTFHorizon:     *mttfHorizon,
		SlowNodeFrac:    *slowNodeFrac,
		SlowNodeFactor:  *slowNodeFactor,
		RackSize:        *rackSize,
	}
	if *crashNode >= 0 {
		plan.Crashes = []faults.NodeCrash{{Node: *crashNode, At: *crashAt}}
	}
	if *crashRack >= 0 {
		plan.RackCrashes = []faults.RackCrash{{Rack: *crashRack, At: *crashRackAt}}
	}
	inj, err := faults.NewInjector(plan)
	if err != nil {
		log.Fatal(err)
	}

	p, err := strat.Plan(c, job)
	if err != nil {
		log.Fatal(err)
	}
	var jsonl *obs.JSONL
	var evFile *os.File
	if *eventsPath != "" {
		w := os.Stdout
		if *eventsPath != "-" {
			f, err := os.Create(*eventsPath)
			if err != nil {
				log.Fatal(err)
			}
			evFile = f
			w = f
		}
		jsonl = obs.NewJSONL(w)
	}
	var tracer *obs.ChromeTracer
	if *tracePath != "" {
		tracer = obs.NewChromeTracer()
	}
	var collector *attr.Collector
	if *report {
		collector = &attr.Collector{}
	}
	var live *attr.Live
	var reg *obs.Registry
	var srv *obs.Server
	if *serveAddr != "" {
		reg = obs.NewRegistry()
		live = attr.NewLive(reg, fmt.Sprintf("strategy=%q", strat.Name()))
		s, err := obs.Serve(*serveAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		srv = s
		fmt.Fprintf(os.Stderr, "serving introspection on http://%s\n", srv.Addr)
	}

	opt := sim.Options{Cluster: c, TrackNode: 0, TrackCluster: tracer != nil,
		AggShuffle: p.AggShuffle, Faults: inj, MaxAttempts: *maxRetries,
		Speculation: *speculate, SpeculationThreshold: *specThreshold, BlacklistAfter: *blacklistAfter,
		Watchdog: p.Watchdog, Observer: obs.Multi(jsonl, tracer, collector, live)}
	runs := []sim.JobRun{{Job: job, Delays: p.Delays}}
	var res *sim.Result
	if *ckptDir != "" {
		// Crash-safe mode: the run halts every -checkpoint-every simulated
		// seconds and atomically rewrites its checkpoint; a killed process
		// re-run with -resume continues from the file and finishes with a
		// bit-identical result. Observers and watchdogs hold external state
		// that cannot be serialized, so the flags are mutually exclusive.
		if *ckptEvery <= 0 {
			log.Fatal("-checkpoint-dir requires -checkpoint-every > 0")
		}
		if opt.Observer != nil || opt.Watchdog != nil {
			log.Fatal("-checkpoint-dir is incompatible with -events, -chrometrace, -report, -serve and -guarded")
		}
		if *shardsN > 0 {
			log.Fatal("-checkpoint-dir is incompatible with -shards (the stepped runner keeps no on-disk progress)")
		}
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(*ckptDir, "simulate.ckpt")
		if *resume {
			res, err = sim.ResumeCheckpointedCtx(ctx, opt, runs, path, *ckptEvery)
			switch {
			case err == nil:
				fmt.Fprintf(os.Stderr, "resumed from %s\n", path)
			case os.IsNotExist(err):
				fmt.Fprintf(os.Stderr, "no checkpoint at %s; starting fresh\n", path)
				res, err = sim.RunCheckpointedCtx(ctx, opt, runs, path, *ckptEvery)
			case ckpt.IsFormat(err):
				fmt.Fprintf(os.Stderr, "unusable checkpoint (%v); starting fresh\n", err)
				res, err = sim.RunCheckpointedCtx(ctx, opt, runs, path, *ckptEvery)
			}
		} else {
			res, err = sim.RunCheckpointedCtx(ctx, opt, runs, path, *ckptEvery)
		}
		if err != nil && errors.Is(err, context.Canceled) {
			// Interrupted between checkpoints: the last one is on disk.
			fmt.Fprintf(os.Stderr, "interrupted (%v); re-run with -resume to continue\n", err)
			os.Exit(130)
		}
	} else {
		if *resume {
			log.Fatal("-resume requires -checkpoint-dir")
		}
		if *shardsN > 0 {
			err = shardsim.Run(shardsim.Config{Shards: *shardsN}, 1,
				func(int) (shardsim.World, error) { return shardsim.World{Opt: opt, Runs: runs}, nil },
				func(_ int, r *sim.Result) error { res = r; return nil })
		} else {
			res, err = sim.Run(opt, runs)
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	if *checkpoint >= 0 {
		// Snapshots reject observers and watchdogs (their external state
		// cannot be forked), so the round-trip check runs bare options; the
		// reference is the main result when it too ran bare.
		bare := opt
		bare.Watchdog, bare.Observer = nil, nil
		ref := res
		if opt.Watchdog != nil || opt.Observer != nil {
			if ref, err = sim.Run(bare, runs); err != nil {
				log.Fatal(err)
			}
		}
		snap, err := sim.SnapshotAt(bare, runs, *checkpoint)
		if err != nil {
			log.Fatal(err)
		}
		got, err := snap.Resume(nil)
		if err != nil {
			log.Fatal(err)
		}
		if !reflect.DeepEqual(ref, got) {
			log.Fatalf("checkpoint at t=%.3gs: resumed run differs from the uninterrupted run", *checkpoint)
		}
		fmt.Printf("checkpoint at t=%.4gs (frozen at event boundary t=%.4gs): resumed run bit-identical over %d events\n",
			*checkpoint, snap.Clock(), got.Events)
	}
	// Emit the artifacts before deciding success: a failed run's event log
	// and trace are exactly what one wants for the post-mortem.
	if jsonl != nil {
		if err := jsonl.Flush(); err != nil {
			log.Fatal(err)
		}
		if evFile != nil {
			if err := evFile.Close(); err != nil {
				log.Fatal(err)
			}
		}
	}
	if tracer != nil {
		tracer.AddCounters(res)
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := tracer.Write(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if *jsonPath != "" {
		sum := obs.NewRunSummary(res)
		sum.Workload = job.Name
		sum.Strategy = strat.Name()
		sum.Nodes = *nodes
		if err := obs.WriteJSON(*jsonPath, sum); err != nil {
			log.Fatal(err)
		}
	}
	if ferr := res.Failed(0); ferr != nil {
		log.Fatalf("job failed after %d retries: %v", res.Retries, ferr)
	}

	fmt.Printf("%s under %s on %d nodes\n\n", job.Name, strat.Name(), *nodes)
	var bars []metrics.GanttBar
	for _, id := range job.Graph.Stages() {
		tl := res.Timeline(0, id)
		bars = append(bars, metrics.GanttBar{
			Label: fmt.Sprintf("Stage %d", id),
			Start: tl.Start, Split: tl.ReadEnd, End: tl.End,
		})
	}
	fmt.Print(metrics.RenderGantt(bars, 72))

	toStep := func(s sim.Series) []metrics.StepPoint {
		out := make([]metrics.StepPoint, len(s))
		for i, p := range s {
			out[i] = metrics.StepPoint{T: p.T, V: p.V}
		}
		return out
	}
	netMean, netStd := metrics.TimeWeightedMeanStd(toStep(res.Node.NetRate), 0, res.JCT(0))
	cpuMean, cpuStd := metrics.TimeWeightedMeanStd(toStep(res.Node.CPUBusy), 0, res.JCT(0))
	fmt.Printf("\nJCT %.1fs   worker-0 net %.1f (±%.1f) MB/s   CPU %.1f%% (±%.1f)\n",
		res.JCT(0), netMean/cluster.MB, netStd/cluster.MB, cpuMean*100, cpuStd*100)
	fmt.Printf("cluster averages: CPU %.1f%%  net %.1f%%  disk %.1f%%  (%d events)\n",
		res.AvgCPUUtil*100, res.AvgNetUtil*100, res.AvgDiskUtil*100, res.Events)
	if res.Retries > 0 {
		fmt.Printf("retries absorbed: %d\n", res.Retries)
	}
	if res.SpecLaunched > 0 || res.Blacklisted > 0 {
		fmt.Printf("speculative clones: %d launched, %d won   nodes blacklisted: %d\n",
			res.SpecLaunched, res.SpecWins, res.Blacklisted)
	}
	if len(p.Delays) > 0 {
		fmt.Printf("delays: %v\n", p.Delays)
	}
	if collector != nil {
		rep, err := attr.Build(attr.Context{Cluster: c, Jobs: []*workload.Job{job}}, collector.Events)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		fmt.Print(rep.Render())
	}
	if reg != nil {
		reg.Histogram("attr_makespan_seconds", fmt.Sprintf("{strategy=%q}", strat.Name()),
			"makespan distribution of completed runs",
			obs.ExpBuckets(10, 2, 10)).Observe(res.Makespan)
		if *linger > 0 {
			fmt.Fprintf(os.Stderr, "lingering %v on http://%s\n", *linger, srv.Addr)
			// A signal cuts the linger short; the endpoint still closes
			// cleanly below.
			timer := time.NewTimer(*linger)
			select {
			case <-ctx.Done():
				timer.Stop()
			case <-timer.C:
			}
		}
		if err := srv.Close(); err != nil {
			log.Fatal(err)
		}
	}
}
