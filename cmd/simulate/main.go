// Command simulate runs one workload under one scheduling strategy on the
// fluid cluster simulator and prints the stage timeline (Gantt), the
// tracked worker's utilization summary, and the JCT.
//
// Usage:
//
//	simulate [-workload TriangleCount] [-strategy delaystage|spark|aggshuffle|fuxi] [-nodes 30] [-scale 1.0]
//	simulate -spec job.json -strategy delaystage
package main

import (
	"flag"
	"fmt"
	"log"

	"delaystage/internal/cluster"
	"delaystage/internal/core"
	"delaystage/internal/jobspec"
	"delaystage/internal/metrics"
	"delaystage/internal/scheduler"
	"delaystage/internal/sim"
	"delaystage/internal/workload"
)

func main() {
	name := flag.String("workload", "TriangleCount", "ALS | ConnectedComponents | CosineSimilarity | LDA | TriangleCount")
	stratName := flag.String("strategy", "delaystage", "spark | aggshuffle | fuxi | delaystage | delaystage-ascending | delaystage-random")
	nodes := flag.Int("nodes", 30, "cluster size")
	scale := flag.Float64("scale", 1.0, "workload duration scale")
	specPath := flag.String("spec", "", "JSON job spec (overrides -workload)")
	flag.Parse()

	c := cluster.NewM4LargeCluster(*nodes)
	var job *workload.Job
	switch {
	case *specPath != "":
		spec, err := jobspec.Load(*specPath)
		if err != nil {
			log.Fatal(err)
		}
		j, err := spec.Job(c)
		if err != nil {
			log.Fatal(err)
		}
		job = j
	case *name == "ALS":
		job = workload.ALS(c, *scale)
	default:
		job = workload.PaperWorkloads(c, *scale)[*name]
	}
	if job == nil {
		log.Fatalf("unknown workload %q", *name)
	}

	var strat scheduler.Strategy
	switch *stratName {
	case "spark":
		strat = scheduler.Spark{}
	case "aggshuffle":
		strat = scheduler.AggShuffle{}
	case "fuxi":
		strat = scheduler.Fuxi{}
	case "delaystage":
		strat = scheduler.DelayStage{}
	case "delaystage-ascending":
		strat = scheduler.DelayStage{Order: core.Ascending}
	case "delaystage-random":
		strat = scheduler.DelayStage{Order: core.Random}
	default:
		log.Fatalf("unknown strategy %q", *stratName)
	}

	plan, err := strat.Plan(c, job)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(sim.Options{Cluster: c, TrackNode: 0, AggShuffle: plan.AggShuffle},
		[]sim.JobRun{{Job: job, Delays: plan.Delays}})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s under %s on %d nodes\n\n", job.Name, strat.Name(), *nodes)
	var bars []metrics.GanttBar
	for _, id := range job.Graph.Stages() {
		tl := res.Timeline(0, id)
		bars = append(bars, metrics.GanttBar{
			Label: fmt.Sprintf("Stage %d", id),
			Start: tl.Start, Split: tl.ReadEnd, End: tl.End,
		})
	}
	fmt.Print(metrics.RenderGantt(bars, 72))

	toStep := func(s sim.Series) []metrics.StepPoint {
		out := make([]metrics.StepPoint, len(s))
		for i, p := range s {
			out[i] = metrics.StepPoint{T: p.T, V: p.V}
		}
		return out
	}
	netMean, netStd := metrics.TimeWeightedMeanStd(toStep(res.Node.NetRate), 0, res.JCT(0))
	cpuMean, cpuStd := metrics.TimeWeightedMeanStd(toStep(res.Node.CPUBusy), 0, res.JCT(0))
	fmt.Printf("\nJCT %.1fs   worker-0 net %.1f (±%.1f) MB/s   CPU %.1f%% (±%.1f)\n",
		res.JCT(0), netMean/cluster.MB, netStd/cluster.MB, cpuMean*100, cpuStd*100)
	fmt.Printf("cluster averages: CPU %.1f%%  net %.1f%%  disk %.1f%%  (%d events)\n",
		res.AvgCPUUtil*100, res.AvgNetUtil*100, res.AvgDiskUtil*100, res.Events)
	if len(plan.Delays) > 0 {
		fmt.Printf("delays: %v\n", plan.Delays)
	}
}
