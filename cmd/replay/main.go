// Command replay reads a batch_task CSV trace (real or from cmd/tracegen)
// and replays every job under Fuxi and the three DelayStage variants on
// per-job cluster slices — the Sec. 5.3 simulation (Fig. 14 / Table 4) on
// an arbitrary trace file.
//
// Usage:
//
//	tracegen -jobs 300 | replay
//	replay -f trace.csv [-slice-machines 2]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"

	"delaystage/internal/cluster"
	"delaystage/internal/core"
	"delaystage/internal/dag"
	"delaystage/internal/metrics"
	"delaystage/internal/sim"
	"delaystage/internal/trace"
)

func main() {
	file := flag.String("f", "", "trace file (default: stdin)")
	sliceMachines := flag.Int("slice-machines", 2, "machines in each job's even cluster slice")
	seed := flag.Int64("seed", 1, "seed for slice bandwidth draws and the random order")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	tr, err := trace.Parse(r)
	if err != nil {
		log.Fatal(err)
	}
	if len(tr.Jobs) == 0 {
		log.Fatal("replay: empty trace")
	}
	rng := rand.New(rand.NewSource(*seed))

	slices := make([]*cluster.Cluster, len(tr.Jobs))
	for i := range tr.Jobs {
		slices[i] = sim.Coarsen(cluster.NewTraceCluster(*sliceMachines, 4, rng))
	}

	type variant struct {
		name  string
		order core.Order
		plain bool
	}
	for _, v := range []variant{
		{name: "Fuxi", plain: true},
		{name: "random DelayStage", order: core.Random},
		{name: "default DelayStage", order: core.Descending},
		{name: "ascending DelayStage", order: core.Ascending},
	} {
		var jcts []float64
		var cpuInt, netInt, timeInt float64
		for i := range tr.Jobs {
			wl, err := tr.Jobs[i].Workload(slices[i], trace.DefaultSplit, nil)
			if err != nil {
				log.Fatalf("job %s: %v", tr.Jobs[i].Name, err)
			}
			var delays map[dag.StageID]float64
			if !v.plain {
				mc := 10
				if wl.Graph.Len() > 60 {
					mc = 6
				}
				sched, err := core.Compute(core.Options{
					Cluster: slices[i], Order: v.order, Seed: *seed + int64(i), MaxCandidates: mc,
				}, wl)
				if err != nil {
					log.Fatal(err)
				}
				delays = sched.Delays
			}
			res, err := sim.Run(sim.Options{Cluster: slices[i], TrackNode: -1},
				[]sim.JobRun{{Job: wl, Delays: delays}})
			if err != nil {
				log.Fatal(err)
			}
			jct := res.JCT(0)
			jcts = append(jcts, jct)
			cpuInt += res.AvgCPUUtil * jct
			netInt += res.AvgNetUtil * jct
			timeInt += jct
		}
		cdf := metrics.NewCDF(jcts)
		fmt.Printf("%-22s mean %8.0fs  P50 %8.0fs  P90 %8.0fs  P99 %8.0fs  CPU %5.1f%%  net %5.1f%%\n",
			v.name, cdf.Mean(), cdf.Quantile(0.5), cdf.Quantile(0.9), cdf.Quantile(0.99),
			cpuInt/timeInt*100, netInt/timeInt*100)
	}
}
