// Command replay reads a batch_task CSV trace (real or from cmd/tracegen)
// and replays every job under Fuxi and the three DelayStage variants on
// per-job cluster slices — the Sec. 5.3 simulation (Fig. 14 / Table 4) on
// an arbitrary trace file.
//
// Usage:
//
//	tracegen -jobs 300 | replay
//	replay -f trace.csv [-slice-machines 2]
//	replay -f trace.csv -events ev.jsonl -chrometrace tr.json -json sum.json
//	replay -f trace.csv -fault-rate 0.05 -node-mttf 4000 -speculate -blacklist-after 2
//	replay -f trace.csv -checkpoint-dir ckpt -resume -json sum.json
//	tracegen -scale full | replay -shards 8 -model-eval -variants fuxi,default
//
// -events and -chrometrace capture the default-DelayStage replays (one sim
// run per trace job, labelled run=<job index>); -json summarizes every
// variant.
//
// -shards N replays each variant through N merging-clock engine shards
// (internal/shardsim): shard s owns jobs {i : i%N == s} and advances a
// bounded window of live simulations (-shard-window, default 64) in global
// timestamp order, so memory stays flat even on the full 2.7M-job trace.
// Per-shard JCT CDFs are k-way merged and the utilization integrals are
// folded in job order, so the summary is byte-identical at any shard
// count, including -shards 0 (the sequential path). The same holds for
// -events and -chrometrace: an obs.ShardMux buffers each world's event
// stream and drains finished worlds in index order, so the logs are
// byte-identical to the sequential path at any shard count. For
// full-scale traces combine -shards with -model-eval (closed-form planner
// evaluation instead of what-if simulation) and -variants to pick the
// strategies to replay.
//
// -checkpoint-dir makes the replay crash-safe: after every job the
// per-variant progress (bit-exact JCTs and utilization sums) is written
// atomically to <dir>/replay.ckpt, and -resume continues from it — a
// SIGKILLed replay resumed with the same flags produces a byte-identical
// -json summary. A missing checkpoint starts fresh; a corrupt or
// mismatched one (different trace or flags) is discarded with a warning.
// The sharded path has no per-job progress prefix, so -shards is
// incompatible with -checkpoint-dir.
//
// Diagnostics go to stderr as JSON lines (log/slog); -log-level picks the
// floor (debug, info, warn, error). Results stay on stdout.
package main

import (
	"context"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"math/rand"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"delaystage/internal/ckpt"
	"delaystage/internal/cluster"
	"delaystage/internal/core"
	"delaystage/internal/dag"
	"delaystage/internal/faults"
	"delaystage/internal/metrics"
	"delaystage/internal/obs"
	"delaystage/internal/shardsim"
	"delaystage/internal/sim"
	"delaystage/internal/trace"
)

// variantSummary is one row of the -json output: the per-variant JCT
// distribution, time-weighted utilizations, and the count of jobs that
// exhausted their retry budget (only possible with fault injection on).
type variantSummary struct {
	JCT     *metrics.CDF `json:"jct_seconds"`
	CPUUtil float64      `json:"avg_cpu_util"`
	NetUtil float64      `json:"avg_net_util"`
	Failed  int          `json:"failed_jobs,omitempty"`
}

// progress is the resumable per-variant state: everything the final
// summary derives from, with JCTs kept bit-exact.
type progress struct {
	done                    int // jobs fully replayed under this variant
	jcts                    []float64
	cpuInt, netInt, timeInt float64
	failed                  int
}

const (
	progressKind    = "replay-progress"
	progressVersion = 1
)

// encodeProgress serializes per-variant progress in variant order; floats
// as IEEE-754 bits, so a resumed replay sums the identical values.
func encodeProgress(ps []*progress) []byte {
	var b []byte
	u64 := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	u64(uint64(len(ps)))
	for _, p := range ps {
		u64(uint64(p.done))
		u64(uint64(p.failed))
		f64(p.cpuInt)
		f64(p.netInt)
		f64(p.timeInt)
		u64(uint64(len(p.jcts)))
		for _, j := range p.jcts {
			f64(j)
		}
	}
	return b
}

func decodeProgress(b []byte, nVariants int) ([]*progress, error) {
	bad := func(reason string) ([]*progress, error) {
		return nil, &ckpt.FormatError{Reason: reason}
	}
	off := 0
	u64 := func() uint64 {
		if off+8 > len(b) {
			off = len(b) + 1 // poison: every later read fails too
			return 0
		}
		v := binary.LittleEndian.Uint64(b[off:])
		off += 8
		return v
	}
	f64 := func() float64 { return math.Float64frombits(u64()) }
	if n := u64(); n != uint64(nVariants) {
		return bad("variant count mismatch")
	}
	ps := make([]*progress, nVariants)
	for i := range ps {
		p := &progress{}
		p.done = int(u64())
		p.failed = int(u64())
		p.cpuInt = f64()
		p.netInt = f64()
		p.timeInt = f64()
		nj := u64()
		if off > len(b) || nj > uint64(len(b)) {
			return bad("truncated progress payload")
		}
		p.jcts = make([]float64, 0, nj)
		for j := uint64(0); j < nj; j++ {
			p.jcts = append(p.jcts, f64())
		}
		ps[i] = p
	}
	if off != len(b) {
		return bad("progress payload length mismatch")
	}
	return ps, nil
}

func main() {
	file := flag.String("f", "", "trace file (default: stdin)")
	sliceMachines := flag.Int("slice-machines", 2, "machines in each job's even cluster slice")
	seed := flag.Int64("seed", 1, "seed for slice bandwidth draws and the random order")
	faultRate := flag.Float64("fault-rate", 0, "per-partition task failure probability")
	stragFrac := flag.Float64("straggler-frac", 0, "fraction of partitions that straggle")
	stragFactor := flag.Float64("straggler-factor", 1, "slowdown multiplier of straggling partitions")
	nodeMTTF := flag.Float64("node-mttf", 0, "mean time to failure per slice machine in simulated seconds (0 = off)")
	mttfHorizon := flag.Float64("mttf-horizon", 0, "only MTTF crash draws before this simulated time take effect (0 = unbounded)")
	slowNodeFrac := flag.Float64("slow-node-frac", 0, "fraction of slice machines that run persistently slow")
	slowNodeFactor := flag.Float64("slow-node-factor", 1, "slowdown multiplier of persistently slow machines")
	faultSeed := flag.Int64("fault-seed", 1, "base seed of the fault injector (each trace job draws from seed+index)")
	maxRetries := flag.Int("max-retries", 0, "attempts per partition before a job fails (0 = default 4)")
	speculate := flag.Bool("speculate", false, "launch speculative clones of straggling partitions")
	blacklistAfter := flag.Int("blacklist-after", 0, "blacklist a slice machine after this many faults on it (0 = off)")
	eventsPath := flag.String("events", "", "write a JSONL event log of the default-DelayStage replays to this file (\"-\" = stdout)")
	tracePath := flag.String("chrometrace", "", "write a Chrome trace of the default-DelayStage replays to this file")
	jsonPath := flag.String("json", "", "write a machine-readable per-variant summary to this file (\"-\" = stdout)")
	serveAddr := flag.String("serve", "", "serve live introspection (/metrics with per-variant JCT histograms, /healthz, /debug/pprof) on this address during the replay")
	linger := flag.Duration("linger", 0, "keep the -serve endpoint up this long after the replay (for scraping short runs)")
	ckptDir := flag.String("checkpoint-dir", "", "write per-job progress checkpoints into this directory (the replay becomes crash-safe)")
	resume := flag.Bool("resume", false, "resume from the progress checkpoint in -checkpoint-dir (missing or stale checkpoints start fresh)")
	shards := flag.Int("shards", 0, "replay through this many merging-clock engine shards (0 = sequential legacy path); the summary is byte-identical at any setting")
	shardWindow := flag.Int("shard-window", 0, "max live simulation worlds per shard (0 = default 64); bounds sharded replay memory at full trace scale")
	variantsFlag := flag.String("variants", "", "comma-separated subset of variants to replay: fuxi,random,default,ascending (default: all)")
	modelEval := flag.Bool("model-eval", false, "plan with the closed-form model evaluator instead of what-if simulation (needed to replay full-scale traces in minutes)")
	logLevel := flag.String("log-level", "info", "stderr log floor: debug, info, warn or error")
	flag.Parse()

	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, level)
	fail := func(err error) {
		logger.Error(err.Error())
		os.Exit(1)
	}
	failf := func(format string, a ...any) {
		logger.Error(fmt.Sprintf(format, a...))
		os.Exit(1)
	}

	// SIGINT/SIGTERM cancel the context: the sequential loop stops after
	// the job in flight (its progress checkpoint already flushed), the
	// sharded runner drains its workers, and a -linger endpoint wakes up
	// early — no more dying mid-write on Ctrl-C.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if *shards > 0 && *ckptDir != "" {
		failf("-shards is incompatible with -checkpoint-dir: the sharded replay has no per-job progress prefix; run it to completion")
	}

	var r io.Reader = os.Stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		r = f
	}
	// The trace bytes are hashed while they stream through the parser —
	// never buffered whole — and feed the progress-checkpoint fingerprint:
	// a checkpoint must only resume against the same trace.
	traceHash := fnv.New64a()
	tr, err := trace.Parse(io.TeeReader(r, traceHash))
	if err != nil {
		fail(err)
	}
	if len(tr.Jobs) == 0 {
		failf("replay: empty trace")
	}
	rng := rand.New(rand.NewSource(*seed))

	slices := make([]*cluster.Cluster, len(tr.Jobs))
	for i := range tr.Jobs {
		slices[i] = sim.Coarsen(cluster.NewTraceCluster(*sliceMachines, 4, rng))
	}

	faultsOn := *faultRate > 0 || *stragFrac > 0 || *nodeMTTF > 0 || *slowNodeFrac > 0
	injector := func(jobIdx int) *faults.Injector {
		if !faultsOn {
			return nil
		}
		inj, err := faults.NewInjector(faults.FaultPlan{
			Seed:            *faultSeed + int64(jobIdx),
			TaskFailureProb: *faultRate,
			StragglerFrac:   *stragFrac,
			StragglerFactor: *stragFactor,
			NodeMTTF:        *nodeMTTF,
			MTTFHorizon:     *mttfHorizon,
			SlowNodeFrac:    *slowNodeFrac,
			SlowNodeFactor:  *slowNodeFactor,
		})
		if err != nil {
			fail(err)
		}
		return inj
	}

	var jsonl *obs.JSONL
	var evFile *os.File
	if *eventsPath != "" {
		w := os.Stdout
		if *eventsPath != "-" {
			f, err := os.Create(*eventsPath)
			if err != nil {
				fail(err)
			}
			evFile = f
			w = f
		}
		jsonl = obs.NewJSONL(w)
	}
	var tracer *obs.ChromeTracer
	if *tracePath != "" {
		tracer = obs.NewChromeTracer()
	}
	var reg *obs.Registry
	var srv *obs.Server
	var runsDone *obs.Counter
	if *serveAddr != "" {
		reg = obs.NewRegistry()
		runsDone = reg.Counter("replay_runs_completed_total", "", "sim runs completed across all variants")
		s, err := obs.Serve(*serveAddr, reg)
		if err != nil {
			fail(err)
		}
		srv = s
		logger.Info(fmt.Sprintf("serving introspection on http://%s", srv.Addr), "addr", srv.Addr)
	}

	type variant struct {
		name  string
		order core.Order
		plain bool
	}
	variants := []variant{
		{name: "Fuxi", plain: true},
		{name: "random DelayStage", order: core.Random},
		{name: "default DelayStage", order: core.Descending},
		{name: "ascending DelayStage", order: core.Ascending},
	}
	if *variantsFlag != "" {
		keys := map[string]string{"fuxi": "Fuxi", "random": "random DelayStage",
			"default": "default DelayStage", "ascending": "ascending DelayStage"}
		want := map[string]bool{}
		for _, k := range strings.Split(*variantsFlag, ",") {
			name, ok := keys[strings.TrimSpace(strings.ToLower(k))]
			if !ok {
				failf("replay: unknown variant %q (want fuxi, random, default or ascending)", k)
			}
			want[name] = true
		}
		sel := variants[:0]
		for _, v := range variants {
			if want[v.name] {
				sel = append(sel, v)
			}
		}
		variants = sel
	}

	// Progress checkpointing. The fingerprint covers the trace bytes and
	// every flag that shapes a replayed run, so a checkpoint written under
	// different inputs is rejected and discarded.
	var ckptPath string
	state := make([]*progress, len(variants))
	for i := range state {
		state[i] = &progress{}
	}
	if *ckptDir != "" {
		if jsonl != nil || tracer != nil {
			// A resumed replay skips completed jobs, so per-job event logs
			// would silently come out partial.
			failf("-checkpoint-dir is incompatible with -events and -chrometrace")
		}
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			fail(err)
		}
		ckptPath = filepath.Join(*ckptDir, "replay.ckpt")
	} else if *resume {
		failf("-resume requires -checkpoint-dir")
	}
	h := traceHash
	cfgBuf := make([]byte, 0, 128)
	for _, v := range []float64{float64(*sliceMachines), float64(*seed), *faultRate,
		*stragFrac, *stragFactor, *nodeMTTF, *mttfHorizon, *slowNodeFrac, *slowNodeFactor,
		float64(*faultSeed), float64(*maxRetries), float64(*blacklistAfter)} {
		cfgBuf = binary.LittleEndian.AppendUint64(cfgBuf, math.Float64bits(v))
	}
	for _, b := range []bool{*speculate, *modelEval} {
		if b {
			cfgBuf = append(cfgBuf, 1)
		} else {
			cfgBuf = append(cfgBuf, 0)
		}
	}
	for _, v := range variants {
		cfgBuf = append(cfgBuf, v.name...)
	}
	h.Write(cfgBuf)
	fingerprint := h.Sum64()
	if *resume {
		env, err := ckpt.ReadFile(ckptPath)
		switch {
		case os.IsNotExist(err):
			logger.Info(fmt.Sprintf("no checkpoint at %s; starting fresh", ckptPath), "path", ckptPath)
		case err != nil:
			if !ckpt.IsFormat(err) {
				fail(err)
			}
			logger.Warn(fmt.Sprintf("unusable checkpoint (%v); starting fresh", err))
		default:
			verr := env.Expect(progressKind, progressVersion, fingerprint)
			var loaded []*progress
			if verr == nil {
				loaded, verr = decodeProgress(env.Payload, len(variants))
			}
			if verr != nil {
				logger.Warn(fmt.Sprintf("unusable checkpoint (%v); starting fresh", verr))
			} else {
				state = loaded
				done := 0
				for _, p := range state {
					done += p.done
				}
				logger.Info(fmt.Sprintf("resumed from %s: %d/%d runs already done",
					ckptPath, done, len(variants)*len(tr.Jobs)), "path", ckptPath)
			}
		}
	}
	saveProgress := func() {
		if ckptPath == "" {
			return
		}
		if err := ckpt.WriteFile(ckptPath, ckpt.Envelope{
			Kind: progressKind, Version: progressVersion,
			Fingerprint: fingerprint, Payload: encodeProgress(state),
		}); err != nil {
			fail(err)
		}
	}

	summary := map[string]*variantSummary{}
	for vi, v := range variants {
		// Observers tap the default-DelayStage variant — the paper's
		// headline configuration — with one "run" per trace job.
		observed := v.order == core.Descending && !v.plain
		var jctHist *obs.Histogram
		if reg != nil {
			jctHist = reg.Histogram("replay_jct_seconds", fmt.Sprintf("{variant=%q}", v.name),
				"per-job completion time by scheduling variant", obs.ExpBuckets(10, 2, 12))
		}
		p := state[vi]
		// buildWorld materializes job i's replay world: the planned delays
		// (when the variant plans) plus the simulation options on the job's
		// own cluster slice. It is a pure function of i, so the sharded path
		// may call it lazily from worker goroutines.
		buildWorld := func(i int) (shardsim.World, error) {
			wl, err := tr.Jobs[i].Workload(slices[i], trace.DefaultSplit, nil)
			if err != nil {
				return shardsim.World{}, fmt.Errorf("job %s: %w", tr.Jobs[i].Name, err)
			}
			var delays map[dag.StageID]float64
			if !v.plain {
				mc := 10
				if wl.Graph.Len() > 60 {
					mc = 6
				}
				sched, err := core.Compute(core.Options{
					Cluster: slices[i], Order: v.order, Seed: *seed + int64(i),
					MaxCandidates: mc, UseModelEvaluator: *modelEval,
				}, wl)
				if err != nil {
					return shardsim.World{}, err
				}
				delays = sched.Delays
			}
			return shardsim.World{
				Opt: sim.Options{Cluster: slices[i], TrackNode: -1,
					Faults: injector(i), MaxAttempts: *maxRetries,
					Speculation: *speculate, BlacklistAfter: *blacklistAfter},
				Runs: []sim.JobRun{{Job: wl, Delays: delays}},
			}, nil
		}
		var mergedCDF *metrics.CDF
		if *shards > 0 {
			// Sharded replay: shard s owns jobs {i : i%shards == s}, worlds
			// are built lazily as their shard's merging clock reaches them,
			// and only shards×window engines are live at once. Results land
			// in indexed slots and are folded in job order below, so the
			// summary floats match the sequential path bit for bit.
			//
			// Event observation shards the same way: each observed world
			// buffers its stream in the mux and the index-order reduce
			// drains finished worlds into the exporters, reproducing the
			// sequential emission order byte for byte.
			build := buildWorld
			var mux *obs.ShardMux
			if observed {
				if mux = obs.NewShardMux(len(tr.Jobs), jsonl, tracer); mux.Active() {
					build = func(i int) (shardsim.World, error) {
						w, err := buildWorld(i)
						if err == nil {
							w.Opt.Observer = mux.Observer(i)
						}
						return w, err
					}
				}
			}
			type slot struct {
				jct, cpu, net float64
				failed        bool
			}
			slots := make([]slot, len(tr.Jobs))
			err := shardsim.Run(shardsim.Config{Shards: *shards, MaxLive: *shardWindow, Ctx: ctx},
				len(tr.Jobs),
				build,
				func(i int, res *sim.Result) error {
					if ferr := res.Failed(0); ferr != nil {
						slots[i].failed = true
					} else {
						slots[i].jct = res.JCT(0)
						slots[i].cpu, slots[i].net = res.AvgCPUUtil, res.AvgNetUtil
						if jctHist != nil {
							jctHist.Observe(slots[i].jct) // histogram is mutex-guarded
						}
					}
					if mux != nil {
						mux.Flush(i)
					}
					if runsDone != nil {
						runsDone.Inc()
					}
					return nil
				})
			if err != nil {
				if errors.Is(err, context.Canceled) {
					logger.Warn("interrupted; sharded replay has no per-job progress, rerun from scratch")
					os.Exit(130)
				}
				fail(err)
			}
			nsh := *shards
			if nsh > len(slots) {
				nsh = len(slots)
			}
			byShard := make([][]float64, nsh)
			for i, s := range slots {
				if s.failed {
					p.failed++
					continue
				}
				p.jcts = append(p.jcts, s.jct)
				byShard[i%nsh] = append(byShard[i%nsh], s.jct)
				p.cpuInt += s.cpu * s.jct
				p.netInt += s.net * s.jct
				p.timeInt += s.jct
			}
			// Per-shard sorted CDFs, k-way merged: the full-scale reduction.
			// Merge reproduces NewCDF's sample order element for element.
			cdfs := make([]*metrics.CDF, nsh)
			for s := range cdfs {
				cdfs[s] = metrics.NewCDF(byShard[s])
			}
			mergedCDF = cdfs[0].Merge(cdfs[1:]...)
			p.done = len(tr.Jobs)
		} else {
			for i := p.done; i < len(tr.Jobs); i++ {
				if ctx.Err() != nil {
					// The previous job's progress is already checkpointed;
					// stopping here loses nothing a -resume can't recover.
					done := 0
					for _, st := range state {
						done += st.done
					}
					msg := fmt.Sprintf("interrupted after %d/%d runs", done, len(variants)*len(tr.Jobs))
					if ckptPath != "" {
						msg += fmt.Sprintf("; resume with -checkpoint-dir %s -resume", *ckptDir)
					}
					logger.Warn(msg)
					os.Exit(130)
				}
				w, err := buildWorld(i)
				if err != nil {
					fail(err)
				}
				if observed {
					if jsonl != nil {
						jsonl.Run = i
					}
					if tracer != nil {
						tracer.Run = i
					}
					w.Opt.Observer = obs.Multi(jsonl, tracer)
				}
				res, err := sim.Run(w.Opt, w.Runs)
				if err != nil {
					fail(err)
				}
				if ferr := res.Failed(0); ferr != nil {
					// With fault injection on, a job can exhaust its retry
					// budget; it is a data point of the variant, not a replay
					// error, and it contributes no JCT.
					p.failed++
				} else {
					jct := res.JCT(0)
					p.jcts = append(p.jcts, jct)
					if jctHist != nil {
						jctHist.Observe(jct)
					}
					p.cpuInt += res.AvgCPUUtil * jct
					p.netInt += res.AvgNetUtil * jct
					p.timeInt += jct
				}
				if runsDone != nil {
					runsDone.Inc()
				}
				p.done = i + 1
				saveProgress()
			}
		}
		if len(p.jcts) == 0 {
			failf("%s: every job failed under the injected faults", v.name)
		}
		cdf := mergedCDF
		if cdf == nil {
			cdf = metrics.NewCDF(p.jcts)
		}
		fmt.Printf("%-22s mean %8.0fs  P50 %8.0fs  P90 %8.0fs  P99 %8.0fs  CPU %5.1f%%  net %5.1f%%",
			v.name, cdf.Mean(), cdf.Quantile(0.5), cdf.Quantile(0.9), cdf.Quantile(0.99),
			p.cpuInt/p.timeInt*100, p.netInt/p.timeInt*100)
		if p.failed > 0 {
			fmt.Printf("  failed %d", p.failed)
		}
		fmt.Println()
		summary[v.name] = &variantSummary{JCT: cdf, CPUUtil: p.cpuInt / p.timeInt,
			NetUtil: p.netInt / p.timeInt, Failed: p.failed}
	}

	if jsonl != nil {
		if err := jsonl.Flush(); err != nil {
			fail(err)
		}
		if evFile != nil {
			if err := evFile.Close(); err != nil {
				fail(err)
			}
		}
	}
	if tracer != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			fail(err)
		}
		if err := tracer.Write(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
	if *jsonPath != "" {
		out := obs.NewExperimentsSummary(map[string]any{
			"trace_jobs": len(tr.Jobs), "slice_machines": *sliceMachines, "seed": *seed,
		})
		for name, vs := range summary {
			out.Results[name] = vs
		}
		if err := obs.WriteJSON(*jsonPath, out); err != nil {
			fail(err)
		}
	}
	if srv != nil {
		if *linger > 0 {
			logger.Info(fmt.Sprintf("lingering %v on http://%s", *linger, srv.Addr))
			// A signal cuts the linger short; the endpoint still closes
			// cleanly below.
			timer := time.NewTimer(*linger)
			select {
			case <-ctx.Done():
				timer.Stop()
			case <-timer.C:
			}
		}
		if err := srv.Close(); err != nil {
			fail(err)
		}
	}
}
