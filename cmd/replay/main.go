// Command replay reads a batch_task CSV trace (real or from cmd/tracegen)
// and replays every job under Fuxi and the three DelayStage variants on
// per-job cluster slices — the Sec. 5.3 simulation (Fig. 14 / Table 4) on
// an arbitrary trace file.
//
// Usage:
//
//	tracegen -jobs 300 | replay
//	replay -f trace.csv [-slice-machines 2]
//	replay -f trace.csv -events ev.jsonl -chrometrace tr.json -json sum.json
//
// -events and -chrometrace capture the default-DelayStage replays (one sim
// run per trace job, labelled run=<job index>); -json summarizes every
// variant.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"time"

	"delaystage/internal/cluster"
	"delaystage/internal/core"
	"delaystage/internal/dag"
	"delaystage/internal/metrics"
	"delaystage/internal/obs"
	"delaystage/internal/sim"
	"delaystage/internal/trace"
)

// variantSummary is one row of the -json output: the per-variant JCT
// distribution and time-weighted utilizations.
type variantSummary struct {
	JCT     *metrics.CDF `json:"jct_seconds"`
	CPUUtil float64      `json:"avg_cpu_util"`
	NetUtil float64      `json:"avg_net_util"`
}

func main() {
	file := flag.String("f", "", "trace file (default: stdin)")
	sliceMachines := flag.Int("slice-machines", 2, "machines in each job's even cluster slice")
	seed := flag.Int64("seed", 1, "seed for slice bandwidth draws and the random order")
	eventsPath := flag.String("events", "", "write a JSONL event log of the default-DelayStage replays to this file (\"-\" = stdout)")
	tracePath := flag.String("chrometrace", "", "write a Chrome trace of the default-DelayStage replays to this file")
	jsonPath := flag.String("json", "", "write a machine-readable per-variant summary to this file (\"-\" = stdout)")
	serveAddr := flag.String("serve", "", "serve live introspection (/metrics with per-variant JCT histograms, /healthz, /debug/pprof) on this address during the replay")
	linger := flag.Duration("linger", 0, "keep the -serve endpoint up this long after the replay (for scraping short runs)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	tr, err := trace.Parse(r)
	if err != nil {
		log.Fatal(err)
	}
	if len(tr.Jobs) == 0 {
		log.Fatal("replay: empty trace")
	}
	rng := rand.New(rand.NewSource(*seed))

	slices := make([]*cluster.Cluster, len(tr.Jobs))
	for i := range tr.Jobs {
		slices[i] = sim.Coarsen(cluster.NewTraceCluster(*sliceMachines, 4, rng))
	}

	var jsonl *obs.JSONL
	var evFile *os.File
	if *eventsPath != "" {
		w := os.Stdout
		if *eventsPath != "-" {
			f, err := os.Create(*eventsPath)
			if err != nil {
				log.Fatal(err)
			}
			evFile = f
			w = f
		}
		jsonl = obs.NewJSONL(w)
	}
	var tracer *obs.ChromeTracer
	if *tracePath != "" {
		tracer = obs.NewChromeTracer()
	}
	var reg *obs.Registry
	var srv *obs.Server
	var runsDone *obs.Counter
	if *serveAddr != "" {
		reg = obs.NewRegistry()
		runsDone = reg.Counter("replay_runs_completed_total", "", "sim runs completed across all variants")
		s, err := obs.Serve(*serveAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		srv = s
		fmt.Fprintf(os.Stderr, "serving introspection on http://%s\n", srv.Addr)
	}
	summary := map[string]*variantSummary{}

	type variant struct {
		name  string
		order core.Order
		plain bool
	}
	for _, v := range []variant{
		{name: "Fuxi", plain: true},
		{name: "random DelayStage", order: core.Random},
		{name: "default DelayStage", order: core.Descending},
		{name: "ascending DelayStage", order: core.Ascending},
	} {
		// Observers tap the default-DelayStage variant — the paper's
		// headline configuration — with one "run" per trace job.
		observed := v.order == core.Descending && !v.plain
		var jctHist *obs.Histogram
		if reg != nil {
			jctHist = reg.Histogram("replay_jct_seconds", fmt.Sprintf("{variant=%q}", v.name),
				"per-job completion time by scheduling variant", obs.ExpBuckets(10, 2, 12))
		}
		var jcts []float64
		var cpuInt, netInt, timeInt float64
		for i := range tr.Jobs {
			wl, err := tr.Jobs[i].Workload(slices[i], trace.DefaultSplit, nil)
			if err != nil {
				log.Fatalf("job %s: %v", tr.Jobs[i].Name, err)
			}
			var delays map[dag.StageID]float64
			if !v.plain {
				mc := 10
				if wl.Graph.Len() > 60 {
					mc = 6
				}
				sched, err := core.Compute(core.Options{
					Cluster: slices[i], Order: v.order, Seed: *seed + int64(i), MaxCandidates: mc,
				}, wl)
				if err != nil {
					log.Fatal(err)
				}
				delays = sched.Delays
			}
			opt := sim.Options{Cluster: slices[i], TrackNode: -1}
			if observed {
				if jsonl != nil {
					jsonl.Run = i
				}
				if tracer != nil {
					tracer.Run = i
				}
				opt.Observer = obs.Multi(jsonl, tracer)
			}
			res, err := sim.Run(opt, []sim.JobRun{{Job: wl, Delays: delays}})
			if err != nil {
				log.Fatal(err)
			}
			jct := res.JCT(0)
			jcts = append(jcts, jct)
			if jctHist != nil {
				jctHist.Observe(jct)
				runsDone.Inc()
			}
			cpuInt += res.AvgCPUUtil * jct
			netInt += res.AvgNetUtil * jct
			timeInt += jct
		}
		cdf := metrics.NewCDF(jcts)
		fmt.Printf("%-22s mean %8.0fs  P50 %8.0fs  P90 %8.0fs  P99 %8.0fs  CPU %5.1f%%  net %5.1f%%\n",
			v.name, cdf.Mean(), cdf.Quantile(0.5), cdf.Quantile(0.9), cdf.Quantile(0.99),
			cpuInt/timeInt*100, netInt/timeInt*100)
		summary[v.name] = &variantSummary{JCT: cdf, CPUUtil: cpuInt / timeInt, NetUtil: netInt / timeInt}
	}

	if jsonl != nil {
		if err := jsonl.Flush(); err != nil {
			log.Fatal(err)
		}
		if evFile != nil {
			if err := evFile.Close(); err != nil {
				log.Fatal(err)
			}
		}
	}
	if tracer != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := tracer.Write(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if *jsonPath != "" {
		out := obs.NewExperimentsSummary(map[string]any{
			"trace_jobs": len(tr.Jobs), "slice_machines": *sliceMachines, "seed": *seed,
		})
		for name, vs := range summary {
			out.Results[name] = vs
		}
		if err := obs.WriteJSON(*jsonPath, out); err != nil {
			log.Fatal(err)
		}
	}
	if srv != nil {
		if *linger > 0 {
			fmt.Fprintf(os.Stderr, "lingering %v on http://%s\n", *linger, srv.Addr)
			time.Sleep(*linger)
		}
		if err := srv.Close(); err != nil {
			log.Fatal(err)
		}
	}
}
