// Command delaystage runs the DelayStage delay-time calculator (Alg. 1)
// and prints the computed submission delays X, the predicted makespans,
// and the simulated JCT comparison. The job comes from a built-in paper
// workload, a JSON job spec (see internal/jobspec), or a Spark event log.
//
// Usage:
//
//	delaystage [-workload LDA] [-nodes 30] [-scale 1.0] [-order descending|ascending|random] [-profile] [-no-eval-cache]
//	delaystage -spec job.json [-dot schedule.dot]
//	delaystage -eventlog app.log
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"delaystage/internal/cluster"
	"delaystage/internal/core"
	"delaystage/internal/dag"
	"delaystage/internal/eventlog"
	"delaystage/internal/jobspec"
	"delaystage/internal/profiler"
	"delaystage/internal/sim"
	"delaystage/internal/workload"
)

func main() {
	name := flag.String("workload", "LDA", "ALS | ConnectedComponents | CosineSimilarity | LDA | TriangleCount")
	nodes := flag.Int("nodes", 30, "cluster size (m4.large-class nodes)")
	scale := flag.Float64("scale", 1.0, "workload duration scale")
	orderName := flag.String("order", "descending", "execution-path order: descending | ascending | random")
	seed := flag.Int64("seed", 1, "seed for the random order / profiling noise")
	profile := flag.Bool("profile", false, "plan on profiled (noisy) parameters, as the prototype does")
	noCache := flag.Bool("no-eval-cache", false, "disable the what-if memo cache and snapshot forking (every candidate simulated from scratch; the schedule is identical either way)")
	approx := flag.Bool("approx-plan", false, "plan from the analytic bound surrogate only (no simulation per candidate; makespans are estimates)")
	noPrune := flag.Bool("no-bound-prune", false, "disable the analytic pruning tier of the candidate scan (single-tier reference; the schedule is identical either way)")
	specPath := flag.String("spec", "", "JSON job spec (overrides -workload)")
	logPath := flag.String("eventlog", "", "Spark event log to derive the job from (overrides -workload)")
	dotPath := flag.String("dot", "", "write the schedule-annotated DAG as Graphviz DOT to this file")
	flag.Parse()

	c := cluster.NewM4LargeCluster(*nodes)
	var job *workload.Job
	switch {
	case *specPath != "":
		spec, err := jobspec.Load(*specPath)
		if err != nil {
			log.Fatal(err)
		}
		j, err := spec.Job(c)
		if err != nil {
			log.Fatal(err)
		}
		job = j
	case *logPath != "":
		f, err := os.Open(*logPath)
		if err != nil {
			log.Fatal(err)
		}
		l, err := eventlog.Parse(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		j, err := l.Job(c)
		if err != nil {
			log.Fatal(err)
		}
		job = j
	case *name == "ALS":
		job = workload.ALS(c, *scale)
	default:
		job = workload.PaperWorkloads(c, *scale)[*name]
	}
	if job == nil {
		log.Fatalf("unknown workload %q", *name)
	}

	var order core.Order
	switch *orderName {
	case "descending":
		order = core.Descending
	case "ascending":
		order = core.Ascending
	case "random":
		order = core.Random
	default:
		log.Fatalf("unknown order %q", *orderName)
	}

	planJob := job
	if *profile {
		prof, err := profiler.ProfileJob(job, profiler.Options{Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		planJob = prof.Estimated
		fmt.Printf("profiled on a 10%% sample in %.1f simulated seconds\n", prof.ProfilingTime)
	}

	sched, err := core.Compute(core.Options{Cluster: c, Order: order, Seed: *seed,
		DisableEvalCache: *noCache, Approximate: *approx, DisableBoundPrune: *noPrune}, planJob)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s on %d nodes (order: %s)\n", job.Name, *nodes, order)
	fmt.Printf("parallel stages K = %v\n", sched.K)
	fmt.Printf("execution paths:\n")
	for i, p := range sched.Paths {
		fmt.Printf("  P%d: %v\n", i+1, p.Stages)
	}
	fmt.Printf("delay schedule X (seconds after ready):\n")
	ids := make([]int, 0, len(sched.Delays))
	for id := range sched.Delays {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	if len(ids) == 0 {
		fmt.Println("  (no stages delayed)")
	}
	for _, id := range ids {
		fmt.Printf("  stage %-3d +%.1fs\n", id, sched.Delays[dag.StageID(id)])
	}
	fmt.Printf("predicted parallel-region makespan: %.1fs (stock %.1fs)\n", sched.Makespan, sched.StockMakespan)
	fmt.Printf("Alg. 1 compute time: %v over %d evaluations", sched.ComputeTime, sched.Evaluations)
	if sched.CacheHits+sched.ForkedEvals+sched.FullEvals > 0 {
		fmt.Printf(" (%d cache hits, %d forked, %d full runs)", sched.CacheHits, sched.ForkedEvals, sched.FullEvals)
	}
	if sched.Prune.Bounded > 0 {
		fmt.Printf("\ntwo-tier scan: %d candidates bounded, %d pruned, %d exact, %d approx",
			sched.Prune.Bounded, sched.Prune.Pruned, sched.Prune.Exact, sched.Prune.Approx)
	}
	fmt.Printf("\n\n")

	stock, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1}, []sim.JobRun{{Job: job}})
	if err != nil {
		log.Fatal(err)
	}
	delayed, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1}, []sim.JobRun{{Job: job, Delays: sched.Delays}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated JCT: stock %.1fs → DelayStage %.1fs (−%.1f%%)\n",
		stock.JCT(0), delayed.JCT(0), 100*(stock.JCT(0)-delayed.JCT(0))/stock.JCT(0))
	if *dotPath != "" {
		dot, err := jobspec.DOT(job, sched.Delays)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*dotPath, []byte(dot), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("schedule DAG written to %s\n", *dotPath)
	}
	if delayed.JCT(0) > stock.JCT(0) {
		fmt.Fprintln(os.Stderr, "warning: schedule regressed on the true job (profiling noise?)")
		os.Exit(1)
	}
}
