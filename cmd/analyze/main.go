// Command analyze recomputes the attribution report offline from a JSONL
// event log written by cmd/simulate -events (or cmd/replay -events with
// -run to pick one labelled run). Given the same workload flags the run
// was produced with, its output is byte-identical to the report cmd/
// simulate -report printed live — attribution is a pure function of the
// event stream plus static context, so post-mortems need only the log.
//
// -trace ID switches to job-lifecycle mode: the log is read for trace
// lines (schema delaystage/trace/v1, written by cmd/schedd -events) and
// the named job's span tree is printed exactly as GET /v1/trace/{id}
// served it live — byte-identical offline reconstruction. -chrometrace
// additionally renders the spans as a chrome://tracing file.
//
// Usage:
//
//	simulate -workload TriangleCount -events run.jsonl
//	analyze -events run.jsonl -workload TriangleCount
//	analyze -events replay.jsonl -run 3 ...
//	cat run.jsonl | analyze -events -
//	analyze -events schedd.jsonl -trace j-0
//	analyze -events schedd.jsonl -trace j-0 -chrometrace j0.trace.json
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"delaystage/internal/attr"
	"delaystage/internal/cluster"
	"delaystage/internal/jobspec"
	"delaystage/internal/obs"
	"delaystage/internal/workload"
)

func main() {
	eventsPath := flag.String("events", "", "JSONL event log to analyze (\"-\" = stdin); required")
	name := flag.String("workload", "TriangleCount", "ALS | ConnectedComponents | CosineSimilarity | LDA | TriangleCount — must match the logged run")
	nodes := flag.Int("nodes", 30, "cluster size of the logged run")
	scale := flag.Float64("scale", 1.0, "workload duration scale of the logged run")
	specPath := flag.String("spec", "", "JSON job spec (overrides -workload)")
	run := flag.Int("run", -1, "run label to analyze in a multi-run log (-1 = unlabelled lines)")
	alpha := flag.Float64("alpha", 0, "engine ContentionOverhead of the logged run (0 = the 0.22 default, negative = none)")
	traceID := flag.String("trace", "", "print this job's lifecycle span tree from the log's trace lines instead of attributing")
	chromePath := flag.String("chrometrace", "", "with -trace: also render the spans as a chrome://tracing JSON file")
	flag.Parse()
	if *eventsPath == "" {
		fmt.Fprintln(os.Stderr, "analyze: -events is required")
		flag.Usage()
		os.Exit(2)
	}

	var r io.Reader = os.Stdin
	if *eventsPath != "-" {
		f, err := os.Open(*eventsPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	if *traceID != "" {
		replayTrace(r, *traceID, *chromePath)
		return
	}
	logged, err := obs.ReadEvents(r)
	if err != nil {
		log.Fatal(err)
	}
	events := obs.EventsOfRun(logged, *run)
	if len(events) == 0 {
		runs := obs.Runs(logged)
		log.Fatalf("analyze: no events with run label %d (labels present: %v)", *run, runs)
	}

	c := cluster.NewM4LargeCluster(*nodes)
	var job *workload.Job
	switch {
	case *specPath != "":
		spec, err := jobspec.Load(*specPath)
		if err != nil {
			log.Fatal(err)
		}
		j, err := spec.Job(c)
		if err != nil {
			log.Fatal(err)
		}
		job = j
	case *name == "ALS":
		job = workload.ALS(c, *scale)
	default:
		job = workload.PaperWorkloads(c, *scale)[*name]
	}
	if job == nil {
		log.Fatalf("unknown workload %q", *name)
	}

	// The selected run may contain several job indices (multi-job sims);
	// each is attributed against the same workload description.
	maxJob := 0
	for _, ev := range events {
		if ev.Job > maxJob {
			maxJob = ev.Job
		}
	}
	jobs := make([]*workload.Job, maxJob+1)
	for i := range jobs {
		jobs[i] = job
	}

	rep, err := attr.Build(attr.Context{Cluster: c, Jobs: jobs, Alpha: *alpha}, events)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Render())
}

// replayTrace reconstructs one job's lifecycle span tree from the log's
// trace lines. The JSON printed to stdout is byte-identical to what the
// live GET /v1/trace/{id} endpoint served for the same job.
func replayTrace(r io.Reader, id, chromePath string) {
	traces, err := obs.ReadTraces(r)
	if err != nil {
		log.Fatal(err)
	}
	tr, ok := obs.FindTrace(traces, id)
	if !ok {
		ids := make([]string, 0, len(traces))
		for _, t := range traces {
			ids = append(ids, t.TraceID)
		}
		log.Fatalf("analyze: no trace %q in log (present: %v)", id, ids)
	}
	if err := obs.EncodeTraceJSON(os.Stdout, tr); err != nil {
		log.Fatal(err)
	}
	if chromePath != "" {
		f, err := os.Create(chromePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := obs.WriteTraceChrome(f, tr); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "analyze: wrote %s (open in chrome://tracing or ui.perfetto.dev)\n", chromePath)
	}
}
