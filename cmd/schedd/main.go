// Command schedd is the online scheduling service daemon: a long-running
// control plane / data plane pair (internal/service) that admits, plans
// and dispatches continuously arriving DAG jobs over an HTTP/JSON API.
//
// Usage:
//
//	schedd -addr :8080
//	schedd -addr :8080 -policy token-bucket -rate 0.5 -burst 4
//	schedd -addr :0 -policy queue-cap -queue-cap 8 -revise-depth 4
//	schedd -replay trace.csv -once                 # open-loop trace replay
//	schedd -poisson 50 -arrival-rate 0.02 -once    # synthetic Poisson load
//
// API (plus /metrics, /healthz and /debug/pprof from the introspection mux):
//
//	POST /v1/jobs       {"tenant":"t","arrival":12.5,"job":{<jobspec JSON>}}
//	GET  /v1/jobs       every submission
//	GET  /v1/jobs/{id}  one submission's status
//	GET  /v1/plan/{id}  the chosen delay vector and its provenance
//	GET  /v1/trace/{id} the job's lifecycle span tree with decision audit
//	GET  /v1/timeline   the bounded scheduler-milestone ring
//	GET  /v1/cluster    live data-plane state
//
// -events FILE appends one JSONL trace line (schema delaystage/trace/v1)
// per job the moment it finishes; `analyze -events FILE -trace ID`
// reconstructs the /v1/trace/{id} response from it byte-identically
// offline. Diagnostics go to stderr as JSON slog lines (-log-level
// debug|info|warn|error); every job-scoped line carries a trace_id key.
//
// The built-in load drivers submit through the same service entry point
// the HTTP handler uses, so admission, template caching and metrics see
// identical traffic: -replay feeds a batch_task CSV trace (real or from
// cmd/tracegen) at its recorded arrivals; -poisson N generates N gallery
// jobs with exponential inter-arrival gaps. After a driver finishes the
// daemon drains the data plane, prints a JCT summary, and keeps serving
// until SIGINT/SIGTERM unless -once is set. Shutdown is graceful either
// way: signals cancel the driver between submissions and the HTTP server
// closes cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"math/rand"
	"os"
	"os/signal"
	"sort"
	"syscall"

	"delaystage/internal/cluster"
	"delaystage/internal/obs"
	"delaystage/internal/service"
	"delaystage/internal/trace"
	"delaystage/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address (\":0\" picks a free port)")
	nodes := flag.Int("nodes", 10, "m4.large nodes in the simulated cluster")
	policy := flag.String("policy", "accept-all", "admission policy: accept-all, token-bucket, queue-cap")
	rate := flag.Float64("rate", 1, "token-bucket refill rate in jobs per wall-clock second")
	burst := flag.Float64("burst", 5, "token-bucket burst size per tenant")
	queueCap := flag.Int("queue-cap", 8, "queue-cap policy: reject when this many jobs are live")
	reviseDepth := flag.Int("revise-depth", 0, "dispatch submit-when-ready (skip Alg. 1) when the live-job count reaches this (0 = off)")
	cacheSize := flag.Int("cache-size", 0, "plan-template cache capacity (0 = 512, negative disables)")
	driftTol := flag.Float64("drift-tol", 0.15, "template validity: max relative per-stage drift on a cache hit")
	maxCandidates := flag.Int("max-candidates", 16, "delay candidates per stage in the planning sweep")
	slot := flag.Float64("slot", 1, "delay granularity in seconds")
	fair := flag.Bool("fair", true, "share resources first equally among jobs (Sec. 5.3)")
	approxPlan := flag.Bool("approx-plan", false, "answer planning decisions from the analytic bound surrogate (no simulation on the control-plane hot path)")
	timescale := flag.Float64("timescale", 1, "simulated seconds per wall-clock second for submissions without an arrival")
	replayPath := flag.String("replay", "", "open-loop driver: replay this batch_task CSV trace at its recorded arrivals")
	poisson := flag.Int("poisson", 0, "open-loop driver: submit this many synthetic gallery jobs with Poisson arrivals")
	arrivalRate := flag.Float64("arrival-rate", 0.01, "Poisson arrival rate λ in jobs per simulated second")
	seed := flag.Int64("seed", 1, "seed for the Poisson driver's job shapes and gaps")
	once := flag.Bool("once", false, "exit after the load driver finishes instead of serving until a signal")
	events := flag.String("events", "", "append one JSONL trace line per finished job to this file (offline replay via analyze -trace)")
	logLevel := flag.String("log-level", "info", "stderr diagnostic level: debug, info, warn or error")
	flag.Parse()

	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, level)
	fail := func(err error) {
		logger.Error(err.Error())
		os.Exit(1)
	}

	// SIGINT/SIGTERM cancel the context: the load driver stops between
	// submissions, the data plane finishes its current advance, and the
	// HTTP server shuts down cleanly instead of dying mid-response.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	c := cluster.NewM4LargeCluster(*nodes)
	var admit service.AdmissionPolicy
	switch *policy {
	case "accept-all":
		admit = service.AcceptAll{}
	case "token-bucket":
		admit = service.NewTokenBucket(*rate, *burst)
	case "queue-cap":
		admit = service.QueueDepthCap{Max: *queueCap}
	default:
		fail(fmt.Errorf("unknown -policy %q (want accept-all, token-bucket or queue-cap)", *policy))
	}
	// traceLog stays the untyped nil interface when -events is unset: a
	// typed-nil *os.File would pass the service's `!= nil` export guard
	// and fail every write with EINVAL.
	var traceLog io.Writer
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		traceLog = f
	}
	svc, err := service.New(service.Options{
		Cluster:             c,
		Admission:           admit,
		DriftTolerance:      *driftTol,
		ReviseQueueDepth:    *reviseDepth,
		CacheCapacity:       *cacheSize,
		MaxCandidates:       *maxCandidates,
		SlotSeconds:         *slot,
		FairByJob:           *fair,
		ApproximatePlanning: *approxPlan,
		TimeScale:           *timescale,
		TraceLog:            traceLog,
		Logger:              logger,
	})
	if err != nil {
		fail(err)
	}

	srv, err := obs.ServeHandler(*addr, svc.Handler())
	if err != nil {
		fail(err)
	}
	logger.Info(fmt.Sprintf("serving on http://%s", srv.Addr),
		"policy", admit.Name(), "nodes", *nodes)

	if *replayPath != "" && *poisson > 0 {
		fail(fmt.Errorf("-replay and -poisson are mutually exclusive"))
	}
	if *replayPath != "" || *poisson > 0 {
		if err := drive(ctx, logger, svc, c, *replayPath, *poisson, *arrivalRate, *seed); err != nil {
			fail(err)
		}
	}

	if !*once {
		// Serve until a signal arrives or the endpoint dies under us.
		select {
		case <-ctx.Done():
		case err := <-srv.Done():
			if err != nil {
				fail(fmt.Errorf("http server: %w", err))
			}
		}
	}
	if err := srv.Close(); err != nil {
		fail(fmt.Errorf("shutdown: %w", err))
	}
}

// drive runs the open-loop load driver: submit every job through the same
// entry point the HTTP handler uses, drain the data plane, and print a
// completion summary. Cancellation stops between submissions.
func drive(ctx context.Context, logger *slog.Logger, svc *service.Service, c *cluster.Cluster,
	replayPath string, poisson int, arrivalRate float64, seed int64) error {
	type arrival struct {
		job *workload.Job
		at  float64
	}
	var load []arrival
	switch {
	case replayPath != "":
		f, err := os.Open(replayPath)
		if err != nil {
			return err
		}
		tr, err := trace.Parse(f)
		f.Close()
		if err != nil {
			return err
		}
		tr.SortByArrival()
		base := math.Inf(1)
		for _, j := range tr.Jobs {
			base = math.Min(base, j.Arrival)
		}
		for i := range tr.Jobs {
			wl, err := tr.Jobs[i].Workload(c, trace.DefaultSplit, nil)
			if err != nil {
				return fmt.Errorf("job %s: %w", tr.Jobs[i].Name, err)
			}
			load = append(load, arrival{job: wl, at: tr.Jobs[i].Arrival - base})
		}
	default:
		rng := rand.New(rand.NewSource(seed))
		gallery := workload.Gallery(c, 1)
		names := make([]string, 0, len(gallery))
		for name := range gallery {
			names = append(names, name)
		}
		sort.Strings(names)
		at := 0.0
		for i := 0; i < poisson; i++ {
			at += rng.ExpFloat64() / arrivalRate
			load = append(load, arrival{job: gallery[names[rng.Intn(len(names))]], at: at})
		}
	}

	accepted := 0
	for i, a := range load {
		if err := ctx.Err(); err != nil {
			logger.Warn(fmt.Sprintf("driver interrupted after %d/%d submissions", i, len(load)))
			return nil
		}
		at := a.at
		st, err := svc.Submit(service.SubmitRequest{Tenant: "driver", Job: a.job, Arrival: &at})
		if err != nil {
			return fmt.Errorf("submit %s: %w", a.job.Name, err)
		}
		if st.State != service.StateRejected {
			accepted++
		}
	}
	if err := svc.Drain(); err != nil {
		return err
	}
	var jcts []float64
	for _, st := range svc.Jobs() {
		if st.State == service.StateDone {
			jcts = append(jcts, st.JCT)
		}
	}
	cs := svc.ClusterState()
	logger.Info("driver done",
		"submitted", cs.Submitted, "admitted", cs.Admitted, "rejected", cs.Rejected,
		"completed", cs.Done, "mean_jct", mean(jcts), "epochs", cs.Epoch)
	return nil
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	return sum / float64(len(v))
}
