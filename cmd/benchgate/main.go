// Command benchgate compares a freshly generated BENCH_sim.json against a
// committed baseline and fails on performance regressions. The bench suite's
// TestMain writes per-benchmark wall-clock seconds to BENCH_sim.json after a
// `go test -bench` run; CI's bench-smoke job saves the committed file before
// the run and gates the fresh one against it.
//
// Usage:
//
//	benchgate -baseline bench_baseline.json -fresh BENCH_sim.json
//	benchgate -tolerance 0.20 -min-seconds 0.05 ...
//
// A benchmark fails the gate when fresh > baseline × (1 + tolerance).
// Benchmarks below -min-seconds in the baseline are reported but never
// gated: at sub-50ms scale the runner's scheduling jitter dwarfs any real
// regression. A benchmark present in the baseline but absent from the fresh
// file fails the gate too — a silently vanished bench is not a speedup —
// and so does a fresh benchmark missing from the baseline: an ungated
// bench would let its regressions sail through until someone notices, so
// the baseline must be regenerated and committed alongside new benches.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type benchFile struct {
	Parallelism  int          `json:"parallelism"`
	TotalSeconds float64      `json:"total_seconds"`
	Benches      []benchEntry `json:"benches"`
}

type benchEntry struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

func load(path string) (*benchFile, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(buf, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Benches) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks recorded", path)
	}
	return &f, nil
}

func main() {
	basePath := flag.String("baseline", "bench_baseline.json", "committed baseline BENCH_sim.json")
	freshPath := flag.String("fresh", "BENCH_sim.json", "freshly generated BENCH_sim.json")
	tol := flag.Float64("tolerance", 0.20, "allowed relative slowdown before the gate fails")
	minSec := flag.Float64("min-seconds", 0.05, "baseline seconds below which a benchmark is too noisy to gate")
	flag.Parse()

	base, err := load(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	fresh, err := load(*freshPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	got := make(map[string]float64, len(fresh.Benches))
	for _, b := range fresh.Benches {
		got[b.Name] = b.Seconds
	}
	known := make(map[string]bool, len(base.Benches))
	for _, b := range base.Benches {
		known[b.Name] = true
	}

	var failures []string
	fmt.Printf("%-36s %12s %12s %9s\n", "benchmark", "baseline (s)", "fresh (s)", "delta")
	for _, b := range base.Benches {
		cur, ok := got[b.Name]
		if !ok {
			fmt.Printf("%-36s %12.3f %12s %9s\n", b.Name, b.Seconds, "missing", "FAIL")
			failures = append(failures, fmt.Sprintf("%s: present in baseline, missing from fresh run", b.Name))
			continue
		}
		delta := (cur - b.Seconds) / b.Seconds
		verdict := ""
		switch {
		case b.Seconds < *minSec:
			verdict = "(ungated)"
		case delta > *tol:
			verdict = "FAIL"
			failures = append(failures, fmt.Sprintf("%s: %.3fs -> %.3fs (%+.1f%% > +%.0f%%)",
				b.Name, b.Seconds, cur, 100*delta, 100**tol))
		}
		fmt.Printf("%-36s %12.3f %12.3f %+8.1f%% %s\n", b.Name, b.Seconds, cur, 100*delta, verdict)
	}
	for _, b := range fresh.Benches {
		if !known[b.Name] {
			// A benchmark the baseline has never seen means the committed
			// BENCH_sim.json is stale: nothing gates the new bench, so a
			// regression in it would sail through every future run. Fail
			// until the baseline is regenerated and committed.
			fmt.Printf("%-36s %12s %12.3f %9s\n", b.Name, "(new)", b.Seconds, "FAIL")
			failures = append(failures, fmt.Sprintf("%s: present in fresh run, missing from baseline — regenerate and commit BENCH_sim.json", b.Name))
		}
	}
	fmt.Printf("total: baseline %.3fs, fresh %.3fs\n", base.TotalSeconds, fresh.TotalSeconds)

	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchgate: %d regression(s) beyond +%.0f%%:\n", len(failures), 100**tol)
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  "+f)
		}
		fmt.Fprintln(os.Stderr, "If the slowdown is intended, regenerate the baseline with\n  go test -run=XXX -bench='Fig|PlanOnline' -benchtime=1x .\nand commit the updated BENCH_sim.json.")
		os.Exit(1)
	}
	fmt.Println("benchgate: OK")
}
