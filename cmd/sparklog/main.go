// Command sparklog inspects a Spark event log the way the DelayStage
// prototype's profiler does: it prints the per-stage summary (DAG, shuffle
// sizes, processing rates, task skew), optionally converts the job into a
// JSON job spec for cmd/delaystage, and can emit the DAG as Graphviz DOT.
//
// Usage:
//
//	sparklog -f app.log
//	sparklog -f app.log -spec job.json -dot job.dot
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"delaystage/internal/cluster"
	"delaystage/internal/eventlog"
	"delaystage/internal/jobspec"
)

func main() {
	file := flag.String("f", "", "event log file (default: stdin)")
	specOut := flag.String("spec", "", "write the derived job spec JSON here")
	dotOut := flag.String("dot", "", "write the DAG as Graphviz DOT here")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	l, err := eventlog.Parse(r)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("application %q — %d stages\n\n", l.AppName, len(l.Stages))
	fmt.Printf("%6s %-28s %8s %10s %12s %12s %8s %7s\n",
		"stage", "name", "tasks", "wall (s)", "read (MB)", "write (MB)", "R_k MB/s", "skew")
	for _, st := range l.Stages {
		rate := 0.0
		if st.ExecutorRunTimeMs > 0 {
			rate = float64(st.ReadBytes()) / (float64(st.ExecutorRunTimeMs) / 1000) / cluster.MB
		}
		name := st.Name
		if len(name) > 28 {
			name = name[:25] + "..."
		}
		fmt.Printf("%6d %-28s %8d %10.1f %12.1f %12.1f %8.1f %7.2f\n",
			st.ID, name, st.NumTasks, st.Duration(),
			float64(st.ReadBytes())/cluster.MB, float64(st.WriteBytes())/cluster.MB,
			rate, st.Skew())
	}

	// Materialize against a nominal cluster; quantities come from the log.
	ref := cluster.NewM4LargeCluster(30)
	job, err := l.Job(ref)
	if err != nil {
		log.Fatal(err)
	}
	if *specOut != "" {
		f, err := os.Create(*specOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := jobspec.FromJob(job).Write(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("\njob spec written to %s\n", *specOut)
	}
	if *dotOut != "" {
		dot, err := jobspec.DOT(job, nil)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*dotOut, []byte(dot), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("DAG written to %s\n", *dotOut)
	}
}
