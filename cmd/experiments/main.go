// Command experiments regenerates every table and figure of the paper's
// evaluation section on the simulated substrate and prints them in paper
// order. See DESIGN.md for the experiment index and EXPERIMENTS.md for the
// recorded paper-vs-measured comparison.
//
// Usage:
//
//	experiments [-scale f] [-nodes n] [-trace-jobs n] [-reps n] [-seed n]
//	            [-parallelism n] [-only fig10,table3,...] [-timeout d]
//	            [-json results.json] [-serve 127.0.0.1:9090]
//
// -serve exposes live progress while the grid runs: /metrics (experiments
// completed, grid cells remaining/completed, per-experiment durations),
// /healthz and /debug/pprof. Progress hooks never perturb results — the
// rendered tables are byte-identical with or without -serve.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"delaystage/internal/experiments"
	"delaystage/internal/obs"
)

// syncWriter buffers experiment output behind a mutex so a timed-out
// experiment goroutine can keep writing while main drains what it produced
// so far.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) drain() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	s := w.buf.String()
	w.buf.Reset()
	return s
}

// runGuarded runs one experiment under an optional wall-clock guard and
// returns its typed result. On expiry the experiment's partial output is
// flushed with a warning and the run moves on (nil result); the abandoned
// goroutine keeps writing into its private buffer, which is simply never
// read again.
func runGuarded(name string, run func(experiments.Config) (any, error), cfg experiments.Config, timeout time.Duration) (any, error) {
	if timeout <= 0 {
		return run(cfg)
	}
	w := &syncWriter{}
	buffered := cfg
	buffered.W = w
	type outcome struct {
		res any
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := run(buffered)
		done <- outcome{res, err}
	}()
	select {
	case o := <-done:
		fmt.Fprint(os.Stdout, w.drain())
		return o.res, o.err
	case <-time.After(timeout):
		fmt.Fprint(os.Stdout, w.drain())
		fmt.Fprintf(os.Stderr, "experiments: WARNING: %s exceeded -timeout %v; results above are partial\n", name, timeout)
		return nil, nil
	}
}

func main() {
	scale := flag.Float64("scale", 1.0, "workload duration scale (1.0 = paper-sized)")
	nodes := flag.Int("nodes", 30, "prototype cluster size")
	traceJobs := flag.Int("trace-jobs", 600, "jobs in trace-driven experiments")
	reps := flag.Int("reps", 5, "repetitions for error bars")
	seed := flag.Int64("seed", 1, "random seed")
	parallelism := flag.Int("parallelism", 1, "worker count for independent experiment cells (output is bit-identical at any setting)")
	only := flag.String("only", "", "comma-separated subset (fig2..fig17, table3, table4, a2, overhead, geo, online, sensitivity, fault)")
	timeout := flag.Duration("timeout", 0, "per-experiment wall-clock guard (0 = none); an experiment past it is abandoned with a partial-results warning")
	jsonPath := flag.String("json", "", "write a machine-readable summary of every experiment's results to this file (\"-\" = stdout)")
	serveAddr := flag.String("serve", "", "serve live introspection (/metrics, /healthz, /debug/pprof) on this address while experiments run")
	linger := flag.Duration("linger", 0, "keep the -serve endpoint up this long after the last experiment (for scraping short runs)")
	flag.Parse()

	cfg := experiments.Config{
		Scale: *scale, Nodes: *nodes, TraceJobs: *traceJobs,
		Reps: *reps, Seed: *seed, Parallelism: *parallelism, W: os.Stdout,
	}
	var srv *obs.Server
	var expDone *obs.Counter
	var expSeconds *obs.Histogram
	if *serveAddr != "" {
		reg := obs.NewRegistry()
		expDone = reg.Counter("experiments_completed_total", "", "experiments (figures/tables) completed")
		expSeconds = reg.Histogram("experiments_experiment_seconds", "",
			"wall-clock duration of each experiment", obs.ExpBuckets(0.1, 4, 8))
		cellsDone := reg.Counter("experiments_cells_completed_total", "", "grid cells completed")
		cellsLeft := reg.Gauge("experiments_cells_remaining", "", "grid cells announced but not yet completed")
		cfg.OnGrid = func(n int) { cellsLeft.Add(float64(n)) }
		cfg.OnCell = func() { cellsDone.Inc(); cellsLeft.Add(-1) }
		s, err := obs.Serve(*serveAddr, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		srv = s
		fmt.Fprintf(os.Stderr, "serving introspection on http://%s\n", srv.Addr)
	}
	runners := map[string]func(experiments.Config) (any, error){}
	var order []string
	for _, r := range experiments.Runners() {
		runners[r.Name] = r.Run
		if r.Name != "table4" { // rendered by fig14
			order = append(order, r.Name)
		}
	}
	if *only != "" {
		order = nil
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(strings.ToLower(name))
			if _, ok := runners[name]; !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", name)
				os.Exit(2)
			}
			order = append(order, name)
		}
	}
	summary := obs.NewExperimentsSummary(map[string]any{
		"scale": *scale, "nodes": *nodes, "trace_jobs": *traceJobs,
		"reps": *reps, "seed": *seed,
	})
	for _, name := range order {
		started := time.Now()
		res, err := runGuarded(name, runners[name], cfg, *timeout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		if expDone != nil {
			expDone.Inc()
			expSeconds.Observe(time.Since(started).Seconds())
		}
		if res != nil {
			summary.Results[name] = res
		}
	}
	if *jsonPath != "" {
		if err := obs.WriteJSON(*jsonPath, summary); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}
	if srv != nil {
		if *linger > 0 {
			fmt.Fprintf(os.Stderr, "lingering %v on http://%s\n", *linger, srv.Addr)
			time.Sleep(*linger)
		}
		if err := srv.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}
}
