// Command experiments regenerates every table and figure of the paper's
// evaluation section on the simulated substrate and prints them in paper
// order. See DESIGN.md for the experiment index and EXPERIMENTS.md for the
// recorded paper-vs-measured comparison.
//
// Usage:
//
//	experiments [-scale f] [-nodes n] [-trace-jobs n] [-reps n] [-seed n] [-only fig10,table3,...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"delaystage/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload duration scale (1.0 = paper-sized)")
	nodes := flag.Int("nodes", 30, "prototype cluster size")
	traceJobs := flag.Int("trace-jobs", 600, "jobs in trace-driven experiments")
	reps := flag.Int("reps", 5, "repetitions for error bars")
	seed := flag.Int64("seed", 1, "random seed")
	only := flag.String("only", "", "comma-separated subset (fig2..fig17, table3, table4, a2, overhead, geo, online, sensitivity)")
	flag.Parse()

	cfg := experiments.Config{
		Scale: *scale, Nodes: *nodes, TraceJobs: *traceJobs,
		Reps: *reps, Seed: *seed, W: os.Stdout,
	}
	if *only == "" {
		if err := experiments.All(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	runners := map[string]func() error{
		"fig2":        func() error { _, err := experiments.Fig2(cfg); return err },
		"fig3":        func() error { _, err := experiments.Fig3(cfg); return err },
		"fig4":        func() error { _, err := experiments.Fig4(cfg); return err },
		"fig5":        func() error { _, err := experiments.Fig5(cfg); return err },
		"fig6":        func() error { _, err := experiments.Fig6(cfg); return err },
		"fig10":       func() error { _, err := experiments.Fig10(cfg); return err },
		"fig11":       func() error { _, err := experiments.Fig11(cfg); return err },
		"fig12":       func() error { _, err := experiments.Fig12(cfg); return err },
		"fig13":       func() error { _, err := experiments.Fig13(cfg); return err },
		"fig14":       func() error { _, err := experiments.Fig14(cfg); return err },
		"fig15":       func() error { _, err := experiments.Fig15(cfg); return err },
		"fig16":       func() error { _, err := experiments.Fig16(cfg); return err },
		"fig17":       func() error { _, err := experiments.Fig17(cfg); return err },
		"table3":      func() error { _, err := experiments.Table3(cfg); return err },
		"table4":      func() error { _, err := experiments.Table4(cfg); return err },
		"a2":          func() error { _, err := experiments.AppendixA2(cfg); return err },
		"overhead":    func() error { _, err := experiments.Overhead(cfg); return err },
		"geo":         func() error { _, err := experiments.GeoExtension(cfg); return err },
		"online":      func() error { _, err := experiments.OnlineExtension(cfg); return err },
		"sensitivity": func() error { _, err := experiments.Sensitivity(cfg); return err },
	}
	for _, name := range strings.Split(*only, ",") {
		name = strings.TrimSpace(strings.ToLower(name))
		run, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", name)
			os.Exit(2)
		}
		if err := run(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}
