// Command tracegen emits a synthetic Alibaba-v2018-style batch_task CSV
// trace, calibrated to the statistics the paper reports (Sec. 2.1). The
// output round-trips through cmd/traceanalyze and cmd/replay, and a real
// batch_task.csv can be substituted for it anywhere.
//
// Usage:
//
//	tracegen [-jobs 1000] [-seed 1] [-span-hours 192] > batch_task.csv
//	tracegen -usage [-machines 100] [-span-hours 192] > machine_usage.csv
//	tracegen -scale full > batch_task.csv   # the full Alibaba v2018 shape
//
// -scale full reproduces the shape of the real trace the paper evaluates
// on — 2,775,025 jobs arriving over 8 days (and 4,000 machines in -usage
// mode) — for the sharded full-scale replay (replay -shards). Explicit
// -jobs/-span-hours/-machines flags still win over the preset.
package main

import (
	"bufio"
	"flag"
	"log"
	"os"

	"delaystage/internal/trace"
)

// The Alibaba cluster trace v2018 shape the paper evaluates on.
const (
	fullJobs     = 2_775_025
	fullMachines = 4000
	fullSpanH    = 192
)

func main() {
	jobs := flag.Int("jobs", 1000, "number of jobs")
	seed := flag.Int64("seed", 1, "generator seed")
	spanHours := flag.Float64("span-hours", 192, "arrival window (the trace spans 8 days)")
	usage := flag.Bool("usage", false, "emit machine_usage.csv (Fig. 4) instead of batch_task.csv")
	machines := flag.Int("machines", 100, "machine count for -usage")
	scalePreset := flag.String("scale", "", "\"full\" presets the real trace's shape: 2,775,025 jobs / 192 h (and 4,000 machines for -usage); explicit flags override")
	flag.Parse()

	switch *scalePreset {
	case "":
	case "full":
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["jobs"] {
			*jobs = fullJobs
		}
		if !set["span-hours"] {
			*spanHours = fullSpanH
		}
		if !set["machines"] {
			*machines = fullMachines
		}
	default:
		log.Fatalf("tracegen: unknown -scale %q (only \"full\")", *scalePreset)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if *usage {
		u := trace.GenerateUsage(*machines, *spanHours*3600, 300, *seed)
		if err := u.WriteUsage(w); err != nil {
			log.Fatal(err)
		}
		return
	}
	tr := trace.Generate(trace.GenConfig{
		Jobs: *jobs,
		Seed: *seed,
		Span: *spanHours * 3600,
	})
	if err := tr.WriteCSV(w); err != nil {
		log.Fatal(err)
	}
}
