// Command tracegen emits a synthetic Alibaba-v2018-style batch_task CSV
// trace, calibrated to the statistics the paper reports (Sec. 2.1). The
// output round-trips through cmd/traceanalyze and cmd/replay, and a real
// batch_task.csv can be substituted for it anywhere.
//
// Usage:
//
//	tracegen [-jobs 1000] [-seed 1] [-span-hours 192] > batch_task.csv
//	tracegen -usage [-machines 100] [-span-hours 192] > machine_usage.csv
package main

import (
	"bufio"
	"flag"
	"log"
	"os"

	"delaystage/internal/trace"
)

func main() {
	jobs := flag.Int("jobs", 1000, "number of jobs")
	seed := flag.Int64("seed", 1, "generator seed")
	spanHours := flag.Float64("span-hours", 192, "arrival window (the trace spans 8 days)")
	usage := flag.Bool("usage", false, "emit machine_usage.csv (Fig. 4) instead of batch_task.csv")
	machines := flag.Int("machines", 100, "machine count for -usage")
	flag.Parse()

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if *usage {
		u := trace.GenerateUsage(*machines, *spanHours*3600, 300, *seed)
		if err := u.WriteUsage(w); err != nil {
			log.Fatal(err)
		}
		return
	}
	tr := trace.Generate(trace.GenConfig{
		Jobs: *jobs,
		Seed: *seed,
		Span: *spanHours * 3600,
	})
	if err := tr.WriteCSV(w); err != nil {
		log.Fatal(err)
	}
}
