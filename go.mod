module delaystage

go 1.22
