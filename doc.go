// Package delaystage reproduces "Stage Delay Scheduling: Speeding up
// DAG-style Data Analytics Jobs with Resource Interleaving" (Shao et al.,
// ICPP 2019) as a pure-Go library plus a simulated Spark/EC2 substrate.
//
// The public surface lives in the internal packages (this repository is a
// self-contained reproduction, not an importable SDK):
//
//   - internal/core — the DelayStage delay-time calculator (Alg. 1)
//   - internal/sim — the fluid cluster simulator standing in for Spark
//   - internal/scheduler — stock Spark, AggShuffle, Fuxi, DelayStage
//   - internal/workload, internal/trace — the paper's workloads and the
//     Alibaba-trace substrate
//   - internal/experiments — one runner per table/figure of the paper
//
// The root-level bench_test.go regenerates every experiment as a Go
// benchmark; `cmd/experiments` prints them in paper order. See README.md,
// DESIGN.md and EXPERIMENTS.md.
package delaystage
